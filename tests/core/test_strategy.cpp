// Baseline strategies (Aloof, SCALE, LLF) and the classical performance
// guarantees the paper quotes: ρ <= 1/α for LLF on arbitrary latencies and
// ρ <= 4/(3+α) for linear latencies ([41] Thms 6.4.4 / 6.4.5).
#include "stackroute/core/strategy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "stackroute/core/mop.h"
#include "stackroute/core/optop.h"
#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

TEST(Strategy, AloofInducesPlainNash) {
  const ParallelLinks m = fig4_instance();
  const StackelbergOutcome out = evaluate_strategy(m, aloof_strategy(m));
  EXPECT_NEAR(out.cost, fig4_expected().nash_cost, 1e-8);
}

TEST(Strategy, ScaleUsesExactlyAlphaOfTheOptimum) {
  const ParallelLinks m = fig4_instance();
  const std::vector<double> s = scale_strategy(m, 0.3);
  EXPECT_NEAR(sum(s), 0.3, 1e-9);
  const Fig4Expected e = fig4_expected();
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(s[i], 0.3 * e.optimum[i], 1e-8);
  }
}

TEST(Strategy, LlfBudgetIsRespected) {
  Rng rng(150);
  for (int trial = 0; trial < 10; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 6, 2.0);
    for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const std::vector<double> s = llf_strategy(m, alpha);
      EXPECT_NEAR(sum(s), alpha * m.demand, 1e-9);
      // LLF never over-fills a link beyond its optimum load.
      const LinkAssignment opt = solve_optimum(m);
      for (std::size_t i = 0; i < m.size(); ++i) {
        EXPECT_LE(s[i], opt.flows[i] + 1e-9);
      }
    }
  }
}

TEST(Strategy, LlfFillsLargestLatencyFirst) {
  // Pigou: optimum latencies are ℓ1(1/2) = 1/2 < ℓ2 = 1, so LLF fills the
  // constant link first — recovering the Fig. 2 strategy at α = 1/2.
  const ParallelLinks m = pigou();
  const std::vector<double> s = llf_strategy(m, 0.5);
  EXPECT_NEAR(s[1], 0.5, 1e-9);
  EXPECT_NEAR(s[0], 0.0, 1e-9);
  const StackelbergOutcome out = evaluate_strategy(m, s);
  EXPECT_NEAR(out.ratio, 1.0, 1e-7);
}

TEST(Strategy, LlfAtFullControlIsOptimal) {
  Rng rng(151);
  for (int trial = 0; trial < 10; ++trial) {
    const ParallelLinks m = random_polynomial_links(rng, 5, 1.5);
    const StackelbergOutcome out = evaluate_strategy(m, llf_strategy(m, 1.0));
    EXPECT_NEAR(out.ratio, 1.0, 1e-6) << "trial " << trial;
  }
}

TEST(Strategy, LlfOneOverAlphaGuarantee) {
  // [41, Thm 6.4.4]: C(S+T) <= (1/α)·C(O) on parallel links.
  Rng rng(152);
  for (int trial = 0; trial < 15; ++trial) {
    const ParallelLinks m = random_polynomial_links(rng, 6, 2.0);
    for (double alpha : {0.2, 0.4, 0.6, 0.8}) {
      const StackelbergOutcome out =
          evaluate_strategy(m, llf_strategy(m, alpha));
      EXPECT_LE(out.ratio, 1.0 / alpha + 1e-6)
          << "trial " << trial << " alpha " << alpha;
    }
  }
}

TEST(Strategy, LlfLinearLatencyGuarantee) {
  // [41, Thm 6.4.5]: ρ <= 4/(3+α) for linear latencies.
  Rng rng(153);
  for (int trial = 0; trial < 15; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 6, 2.0);
    for (double alpha : {0.2, 0.4, 0.6, 0.8}) {
      const StackelbergOutcome out =
          evaluate_strategy(m, llf_strategy(m, alpha));
      EXPECT_LE(out.ratio, 4.0 / (3.0 + alpha) + 1e-6)
          << "trial " << trial << " alpha " << alpha;
    }
  }
}

TEST(Strategy, LlfReachesOptimumAtBeta) {
  // At α = β_M, LLF freezes exactly the under-loaded links (they have the
  // highest optimum latencies? not in general — but its guarantee at β is
  // still cost C(O) on instances where OpTop's frozen set is LLF's prefix).
  // Use Fig 4, where the under-loaded links M4, M5 have the *largest*
  // optimum latencies — check this precondition first.
  const ParallelLinks m = fig4_instance();
  const Fig4Expected e = fig4_expected();
  const double l4 = m.links[3]->value(e.optimum[3]);
  const double l5 = m.links[4]->value(e.optimum[4]);
  const double l1 = m.links[0]->value(e.optimum[0]);
  ASSERT_GT(l4, l1);
  ASSERT_GT(l5, l1);
  const StackelbergOutcome out =
      evaluate_strategy(m, llf_strategy(m, e.beta));
  EXPECT_NEAR(out.ratio, 1.0, 1e-6);
}

TEST(Strategy, EvaluateStrategyRatioOfOneMeansOptimum) {
  const ParallelLinks m = fig4_instance();
  const OpTopResult r = op_top(m);
  const StackelbergOutcome out = evaluate_strategy(m, r.strategy);
  EXPECT_NEAR(out.ratio, 1.0, 1e-8);
  EXPECT_NEAR(out.cost, r.optimum_cost, 1e-8);
}

TEST(Strategy, MoreControlNeverHurtsLlf) {
  Rng rng(154);
  const ParallelLinks m = random_affine_links(rng, 6, 2.0);
  double prev = kInf;
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    const StackelbergOutcome out =
        evaluate_strategy(m, llf_strategy(m, alpha));
    EXPECT_LE(out.cost, prev + 1e-7) << "alpha " << alpha;
    prev = out.cost;
  }
}

TEST(Strategy, BadArgumentsThrow) {
  const ParallelLinks m = pigou();
  EXPECT_THROW(llf_strategy(m, -0.1), Error);
  EXPECT_THROW(llf_strategy(m, 1.1), Error);
  EXPECT_THROW(scale_strategy(m, 2.0), Error);
  const std::vector<double> wrong_size = {0.1};
  EXPECT_THROW(evaluate_strategy(m, wrong_size), Error);
}

// ---- LLF budget invariant (Σ s = min(α·r, r) to 1 ulp) -------------------

TEST(Strategy, LlfBudgetExactAtFullControl) {
  // α = 1: the budget is r itself. Σ o_i can differ from r by accumulated
  // solver rounding; the last-filled link absorbs the gap, so Σ s_i == r
  // to 1 ulp — not Σ o_i, and not r minus a leaked remainder.
  Rng rng(155);
  for (int trial = 0; trial < 10; ++trial) {
    const ParallelLinks m = random_polynomial_links(rng, 7, 2.0);
    const std::vector<double> s = llf_strategy(m, 1.0);
    EXPECT_LE(std::fabs(sum(s) - m.demand), 4e-16 * m.demand) << trial;
  }
}

TEST(Strategy, LlfBudgetExactUnderLatencyTies) {
  // Identical links tie in optimum latency; the stable order must still
  // spend exactly min(α·r, r).
  ParallelLinks m;
  for (int i = 0; i < 8; ++i) m.links.push_back(make_affine(1.0, 0.5));
  m.demand = 3.0;
  for (double alpha : {0.3, 0.5, 1.0}) {
    const std::vector<double> s = llf_strategy(m, alpha);
    const double target = std::fmin(alpha * m.demand, m.demand);
    EXPECT_LE(std::fabs(sum(s) - target), 4e-16 * m.demand) << alpha;
  }
}

TEST(Strategy, LlfBudgetExactOverManyLinks) {
  // Regression: a running `budget -= take` leaks one rounding error per
  // link; across hundreds of links the final fractional link was off by
  // far more than an ulp (and a tiny negative remainder truncated it).
  Rng rng(156);
  const ParallelLinks m = random_affine_links(rng, 400, 50.0);
  for (double alpha : {0.37, 0.73, 0.999, 1.0}) {
    const std::vector<double> s = llf_strategy(m, alpha);
    const double target = std::fmin(alpha * m.demand, m.demand);
    EXPECT_LE(std::fabs(sum(s) - target), 4e-16 * m.demand) << alpha;
  }
}

// ---- General networks ----------------------------------------------------

TEST(NetworkStrategy, AloofInducesPlainNash) {
  const NetworkInstance net = braess_classic();  // C(N) = 2, C(O) = 3/2
  const NetworkStackelbergOutcome out =
      evaluate_strategy(net, aloof_strategy(net));
  EXPECT_NEAR(out.cost, 2.0, 1e-7);
  EXPECT_NEAR(out.ratio, 4.0 / 3.0, 1e-6);
}

TEST(NetworkStrategy, ScaleUsesExactlyAlphaOfTheOptimum) {
  const NetworkInstance net = braess_classic();
  const NetworkAssignment opt = solve_optimum(net);
  const NetworkStrategy s = scale_strategy(net, 0.4, opt);
  ASSERT_EQ(s.preload.size(), opt.edge_flow.size());
  for (std::size_t e = 0; e < s.preload.size(); ++e) {
    EXPECT_NEAR(s.preload[e], 0.4 * opt.edge_flow[e], 1e-12);
  }
  ASSERT_EQ(s.controlled.size(), 1u);
  EXPECT_NEAR(s.controlled[0], 0.4, 1e-12);
}

TEST(NetworkStrategy, LlfBudgetInvariantOnNetworks) {
  // Per commodity: Σ path takes == min(α·r_i, r_i) to 1 ulp, visible as
  // preload whose source divergence equals the controlled demand.
  Rng rng(41);
  const NetworkInstance net = grid_city(rng, 3, 3, 2.0);
  const NetworkAssignment opt = solve_optimum(net);
  for (double alpha : {0.25, 0.5, 0.999, 1.0}) {
    const NetworkStrategy s = llf_strategy(net, alpha, opt);
    ASSERT_EQ(s.controlled.size(), 1u);
    EXPECT_DOUBLE_EQ(s.controlled[0],
                     std::fmin(alpha * net.commodities[0].demand,
                               net.commodities[0].demand));
    // Net outflow at the source == the demand the Leader serves.
    double out_flow = 0.0;
    for (EdgeId e = 0; e < net.graph.num_edges(); ++e) {
      if (net.graph.edge(e).tail == net.commodities[0].source) {
        out_flow += s.preload[static_cast<std::size_t>(e)];
      }
      if (net.graph.edge(e).head == net.commodities[0].source) {
        out_flow -= s.preload[static_cast<std::size_t>(e)];
      }
    }
    EXPECT_NEAR(out_flow, s.controlled[0], 1e-9) << alpha;
  }
}

TEST(NetworkStrategy, FullControlReproducesTheOptimum) {
  // α = 1 for both baselines: the Leader routes everything, followers
  // route nothing, C(S+T) = C(O).
  Rng rng(42);
  const NetworkInstance net = grid_city(rng, 3, 3, 1.5);
  const NetworkAssignment opt = solve_optimum(net);
  for (const bool use_llf : {false, true}) {
    const NetworkStrategy s = use_llf ? llf_strategy(net, 1.0, opt)
                                      : scale_strategy(net, 1.0, opt);
    const NetworkStackelbergOutcome out = evaluate_strategy(net, s);
    EXPECT_NEAR(out.ratio, 1.0, 1e-6) << use_llf;
    for (double t : out.induced) EXPECT_DOUBLE_EQ(t, 0.0);
  }
}

TEST(NetworkStrategy, PrecomputedOptimumOverloadAgrees) {
  Rng rng(43);
  const NetworkInstance net = random_layered_dag(rng, 2, 3, 0.6, 1.0);
  const NetworkAssignment opt = solve_optimum(net);
  SolverWorkspace ws;
  for (double alpha : {0.3, 0.7}) {
    const NetworkStrategy s = scale_strategy(net, alpha, opt);
    const NetworkStackelbergOutcome convenient = evaluate_strategy(net, s);
    const NetworkStackelbergOutcome precomputed =
        evaluate_strategy(net, s, opt.cost, {}, ws, nullptr, nullptr);
    EXPECT_NEAR(convenient.cost, precomputed.cost,
                1e-9 * std::fmax(1.0, convenient.cost));
    EXPECT_NEAR(convenient.ratio, precomputed.ratio, 1e-9);
  }
}

TEST(NetworkStrategy, WarmStartedChainAgreesWithCold) {
  // The α-sweep pattern: each evaluation seeds from the previous α's
  // converged follower decomposition; answers must match the cold ones at
  // solver tolerance.
  Rng rng(44);
  const NetworkInstance net = grid_city(rng, 3, 3, 2.0);
  const NetworkAssignment opt = solve_optimum(net);
  SolverWorkspace ws;
  AssignmentWarmStart warm;
  for (int k = 1; k <= 9; ++k) {
    const double alpha = 0.1 * k;
    const NetworkStrategy s = llf_strategy(net, alpha, opt);
    const NetworkStackelbergOutcome chained =
        evaluate_strategy(net, s, opt.cost, {}, ws, &warm, &warm);
    const NetworkStackelbergOutcome cold = evaluate_strategy(net, s);
    EXPECT_NEAR(chained.cost, cold.cost, 1e-6 * std::fmax(1.0, cold.cost))
        << alpha;
  }
}

TEST(NetworkStrategy, DegenerateOptimumIsAPreconditionError) {
  // A zero-latency network has C(O) = 0: the ratio is undefined, and the
  // caller must get a readable precondition error, not an internal
  // invariant failure.
  NetworkInstance net;
  net.graph = Graph(2);
  net.graph.add_edge(0, 1, make_constant(0.0));
  net.commodities.push_back({0, 1, 1.0});
  try {
    (void)evaluate_strategy(net, aloof_strategy(net));
    FAIL() << "expected stackroute::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("optimum cost C(O) is zero"),
              std::string::npos)
        << e.what();
  }

  ParallelLinks m;
  m.links = {make_constant(0.0)};
  m.demand = 1.0;
  try {
    (void)evaluate_strategy(m, aloof_strategy(m));
    FAIL() << "expected stackroute::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("optimum cost C(O) is zero"),
              std::string::npos)
        << e.what();
  }
}

TEST(NetworkStrategy, ScaleAndLlfNeverBeatMop) {
  // MOP's C(S+T) = C(O) is a floor for any strategy: on general nets the
  // baselines can only match it, never beat it.
  const NetworkInstance net = fig7_instance(0.05);
  const MopResult mr = mop(net);
  EXPECT_NEAR(mr.induced_cost, mr.optimum_cost, 1e-7 * mr.optimum_cost);
  const NetworkAssignment opt = solve_optimum(net);
  SolverWorkspace ws;
  for (double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    for (const bool use_llf : {false, true}) {
      const NetworkStrategy s = use_llf ? llf_strategy(net, alpha, opt)
                                        : scale_strategy(net, alpha, opt);
      const NetworkStackelbergOutcome out =
          evaluate_strategy(net, s, opt.cost, {}, ws, nullptr, nullptr);
      EXPECT_GE(out.cost, mr.induced_cost * (1.0 - 1e-7))
          << "alpha " << alpha << " llf " << use_llf;
    }
  }
}

TEST(NetworkStrategy, ScaleAtModerateAlphaCanBeWorseThanAloof) {
  // The Braess-type anomaly on general networks: preloading α·O can push
  // the followers into a strictly worse equilibrium than leaving them
  // alone. (Found by sweeping the BPR street-grid family; this seed shows
  // SCALE at α = 0.65 ~0.6% above the plain Nash.)
  Rng rng(6);
  const NetworkInstance net = grid_city(rng, 3, 3, 2.0);
  const NetworkAssignment nash = solve_nash(net);
  const NetworkAssignment opt = solve_optimum(net);
  ASSERT_GT(nash.cost, opt.cost * 1.001);  // the anomaly needs PoA > 1
  SolverWorkspace ws;
  const NetworkStrategy s = scale_strategy(net, 0.65, opt);
  const NetworkStackelbergOutcome out =
      evaluate_strategy(net, s, opt.cost, {}, ws, nullptr, nullptr);
  EXPECT_GT(out.cost, nash.cost * 1.001);
}

TEST(NetworkStrategy, NoTestedAlphaBelowOneMatchesMopOnThisInstance) {
  // The paper's headline gap: an instance where MOP induces the exact
  // optimum at β < 1 while neither SCALE nor LLF reaches C(O) at any
  // tested α < 1. (Found by sweeping the BPR street-grid family.)
  Rng rng(37);
  const NetworkInstance net = grid_city(rng, 3, 3, 2.0);
  const MopResult mr = mop(net);
  EXPECT_LT(mr.beta, 0.95);
  EXPECT_NEAR(mr.induced_cost, mr.optimum_cost, 1e-6 * mr.optimum_cost);
  const NetworkAssignment opt = solve_optimum(net);
  SolverWorkspace ws;
  for (int k = 1; k <= 18; ++k) {
    const double alpha = 0.05 * k;  // 0.05 .. 0.90
    for (const bool use_llf : {false, true}) {
      const NetworkStrategy s = use_llf ? llf_strategy(net, alpha, opt)
                                        : scale_strategy(net, alpha, opt);
      const NetworkStackelbergOutcome out =
          evaluate_strategy(net, s, opt.cost, {}, ws, nullptr, nullptr);
      EXPECT_GT(out.ratio, 1.0 + 1e-3)
          << "alpha " << alpha << " llf " << use_llf;
    }
  }
}

TEST(NetworkStrategy, ParallelLinksViewedAsNetworkMatchesLinkLlf) {
  // The two LLF implementations must agree where both apply: on a
  // parallel-links system viewed as a two-node network, the optimum's
  // path decomposition is one path per link, so the fills coincide.
  Rng rng(45);
  const ParallelLinks m = random_affine_links(rng, 5, 2.0);
  const NetworkInstance net = to_network(m);
  const NetworkAssignment net_opt = solve_optimum(net);
  for (double alpha : {0.3, 0.7, 1.0}) {
    const std::vector<double> s_links =
        llf_strategy(m, alpha, net_opt.edge_flow);
    const NetworkStrategy s_net = llf_strategy(net, alpha, net_opt);
    ASSERT_EQ(s_net.preload.size(), s_links.size());
    for (std::size_t i = 0; i < s_links.size(); ++i) {
      EXPECT_NEAR(s_net.preload[i], s_links[i], 1e-9) << alpha << " " << i;
    }
  }
}

TEST(NetworkStrategy, BadArgumentsThrow) {
  const NetworkInstance net = braess_classic();
  EXPECT_THROW(scale_strategy(net, -0.1), Error);
  EXPECT_THROW(llf_strategy(net, 1.5), Error);
  NetworkStrategy wrong = aloof_strategy(net);
  wrong.preload.pop_back();
  EXPECT_THROW(evaluate_strategy(net, wrong), Error);
  NetworkStrategy too_much = aloof_strategy(net);
  too_much.controlled[0] = net.commodities[0].demand * 2.0;
  EXPECT_THROW(evaluate_strategy(net, too_much), Error);
}

}  // namespace
}  // namespace stackroute

// The Section 7 structural theory, checked as executable properties:
// Theorem 7.2 (useless strategies), Theorem 7.4 / Lemma 7.5 (frozen links
// receive no induced flow), Proposition 7.1 (monotonicity), Lemma 6.1
// (the two-link exchange of Figs. 8–10) and the footnote-6 threshold.
#include "stackroute/core/structure.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stackroute/equilibrium/parallel.h"
#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

// Builds a random sub-Nash strategy (s_i <= n_i) controlling a fraction of
// the demand.
std::vector<double> random_sub_nash_strategy(Rng& rng,
                                             const std::vector<double>& nash) {
  std::vector<double> s(nash.size());
  for (std::size_t i = 0; i < nash.size(); ++i) {
    s[i] = rng.uniform(0.0, nash[i]);
  }
  return s;
}

TEST(Structure, FrozenLinksMask) {
  const std::vector<double> strategy = {0.5, 0.1, 0.0};
  const std::vector<double> nash = {0.4, 0.2, 0.0};
  const std::vector<char> mask = frozen_links(strategy, nash);
  EXPECT_TRUE(mask[0]);   // 0.5 >= 0.4
  EXPECT_FALSE(mask[1]);  // 0.1 < 0.2
  EXPECT_TRUE(mask[2]);   // 0 >= 0
}

TEST(Structure, Theorem72UselessStrategiesChangeNothing) {
  // Any strategy with s <= N componentwise induces S + T == N.
  Rng rng(140);
  for (int trial = 0; trial < 25; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 6, 2.0);
    const LinkAssignment nash = solve_nash(m);
    const std::vector<double> s = random_sub_nash_strategy(rng, nash.flows);
    ASSERT_TRUE(is_useless_strategy(s, nash.flows));
    const LinkAssignment t = solve_induced(m, s);
    const std::vector<double> combined = add(s, t.flows);
    EXPECT_NEAR(max_abs_diff(combined, nash.flows), 0.0, 1e-6)
        << "trial " << trial;
    EXPECT_NEAR(stackelberg_cost(m, s, t.flows), cost(m, nash.flows), 1e-6)
        << "trial " << trial;
  }
}

TEST(Structure, Theorem74FrozenLinksGetNoInducedFlow) {
  // Strategy freezing every link it touches (s_j >= n_j or s_j = 0):
  // induced flow on frozen links must be zero.
  Rng rng(141);
  for (int trial = 0; trial < 25; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 6, 2.0);
    const LinkAssignment nash = solve_nash(m);
    std::vector<double> s(m.size(), 0.0);
    // Freeze a random subset, keeping the budget within the demand.
    double budget = m.demand;
    for (std::size_t i = 0; i < m.size() && budget > 0.0; ++i) {
      if (!rng.bernoulli(0.4)) continue;
      const double load = std::fmin(budget, nash.flows[i] * 1.05 + 0.01);
      s[i] = load;
      budget -= load;
    }
    const LinkAssignment t = solve_induced(m, s);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (s[i] >= nash.flows[i] - 1e-12 && s[i] > 0.0) {
        EXPECT_NEAR(t.flows[i], 0.0, 1e-6)
            << "trial " << trial << " link " << i;
      }
    }
  }
}

TEST(Structure, Lemma75PartiallyFrozenStrategies) {
  // Even if only some touched links are frozen, the frozen ones still get
  // no induced flow.
  Rng rng(142);
  for (int trial = 0; trial < 25; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 6, 2.0);
    const LinkAssignment nash = solve_nash(m);
    std::vector<double> s(m.size(), 0.0);
    double budget = m.demand * 0.8;
    for (std::size_t i = 0; i < m.size() && budget > 0.0; ++i) {
      const double load = rng.bernoulli(0.5)
                              ? std::fmin(budget, nash.flows[i] * 1.1 + 0.01)
                              : std::fmin(budget, nash.flows[i] * 0.5);
      s[i] = load;
      budget -= load;
    }
    const LinkAssignment t = solve_induced(m, s);
    const std::vector<char> frozen = frozen_links(s, nash.flows, 1e-12);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (frozen[i] && s[i] > 0.0) {
        EXPECT_NEAR(t.flows[i], 0.0, 1e-6)
            << "trial " << trial << " link " << i;
      }
    }
  }
}

TEST(Structure, MinimumUsefulControlOnFig4) {
  // Under-loaded links of Fig. 4 are M4 (n4 = 23/231) and M5 (n5 = 0); the
  // minimum useful control is min(n4, n5) = 0 (M5 is free to freeze).
  EXPECT_NEAR(minimum_useful_control(fig4_instance()), 0.0, 1e-9);
}

TEST(Structure, MinimumUsefulControlOnTwoAffineLinks) {
  // ℓ1 = x, ℓ2 = x + 1, r = 2: N = {1.5, 0.5}, O = {1.25, 0.75}.
  // Under-loaded: link 2 with n2 = 0.5.
  const ParallelLinks m{{make_linear(1.0), make_affine(1.0, 1.0)}, 2.0};
  EXPECT_NEAR(minimum_useful_control(m), 0.5, 1e-9);
}

TEST(Structure, MinimumUsefulControlZeroWhenNashOptimal) {
  const ParallelLinks m{{make_linear(1.0), make_linear(1.0)}, 1.0};
  EXPECT_NEAR(minimum_useful_control(m), 0.0, 1e-12);
}

TEST(Structure, Lemma61SwapNeverIncreasesCost) {
  // Figs. 8–10: in the lemma's configuration the exchange + ε-shift gives
  // partial cost A + ε(ℓ2 − ℓ1) <= A.
  Rng rng(143);
  int applicable = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const double a = rng.uniform(0.2, 3.0);
    const double b1 = rng.uniform(0.0, 1.0);
    const double b2 = b1 + rng.uniform(0.01, 1.5);
    const double x2 = rng.uniform(0.0, 2.0);
    // Choose s1 so that ℓ1(s1) >= ℓ2(x2): s1 >= x2 + (b2−b1)/a = x2 + ε.
    const double eps = (b2 - b1) / a;
    const double s1 = x2 + eps + rng.uniform(0.0, 1.0);
    const SwapWitness w = lemma61_swap(a, b1, b2, s1, x2);
    ASSERT_TRUE(w.applicable);
    ++applicable;
    EXPECT_LE(w.cost_after, w.cost_before + 1e-12) << "trial " << trial;
    // Exact delta from the proof: ε(ℓ2 − ℓ1).
    EXPECT_NEAR(w.cost_after - w.cost_before, w.epsilon * (w.ell2 - w.ell1),
                1e-9);
  }
  EXPECT_EQ(applicable, 200);
}

TEST(Structure, Lemma61SwapLatenciesExchange) {
  // After the move, the b1-link sits at the old ℓ2 and the b2-link at the
  // old ℓ1 (Fig. 10).
  const SwapWitness w = lemma61_swap(1.0, 0.0, 1.0, 2.0, 0.5);
  ASSERT_TRUE(w.applicable);
  const double a = 1.0;
  const double load1 = 0.5 + w.epsilon;
  const double load2 = 2.0 - w.epsilon;
  EXPECT_NEAR(a * load1 + 0.0, w.ell2, 1e-12);
  EXPECT_NEAR(a * load2 + 1.0, w.ell1, 1e-12);
}

TEST(Structure, Lemma61RejectsBadInputs) {
  EXPECT_THROW(lemma61_swap(0.0, 0.0, 1.0, 1.0, 0.5), Error);
  EXPECT_THROW(lemma61_swap(1.0, 1.0, 0.5, 1.0, 0.5), Error);
  EXPECT_THROW(lemma61_swap(1.0, 0.0, 1.0, -1.0, 0.5), Error);
}

TEST(Structure, Lemma61NotApplicableWhenLatencyOrderFlipped) {
  // ℓ1 < ℓ2: the lemma's precondition fails; flag must say so.
  const SwapWitness w = lemma61_swap(1.0, 0.0, 1.0, 0.1, 1.0);
  EXPECT_FALSE(w.applicable);
}

}  // namespace
}  // namespace stackroute

// Marginal-cost tolls: the pricing alternative to Stackelberg control.
// The tolled equilibrium must reproduce the optimum on every family, and
// the Stackelberg-vs-tolls comparison must be consistent (both reach C(O)).
#include "stackroute/core/tolls.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stackroute/core/optop.h"
#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

TEST(Tolls, OffsetLatencyBehaves) {
  const LatencyPtr fn = make_offset(make_affine(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(fn->value(1.0), 3.5);
  EXPECT_DOUBLE_EQ(fn->derivative(1.0), 2.0);
  EXPECT_DOUBLE_EQ(fn->integral(2.0), (4.0 + 2.0) + 1.0);
  EXPECT_DOUBLE_EQ(fn->inverse(3.5), 1.0);
  EXPECT_DOUBLE_EQ(fn->inverse(0.1), 0.0);  // below ℓ(0)+toll -> clamped
}

TEST(Tolls, OffsetZeroReturnsBase) {
  const LatencyPtr base = make_linear(1.0);
  EXPECT_EQ(make_offset(base, 0.0).get(), base.get());
}

TEST(Tolls, NestedOffsetsCollapse) {
  const LatencyPtr once = make_offset(make_linear(1.0), 0.25);
  const LatencyPtr twice = make_offset(once, 0.5);
  const auto* off = dynamic_cast<const OffsetLatency*>(twice.get());
  ASSERT_NE(off, nullptr);
  EXPECT_DOUBLE_EQ(off->offset(), 0.75);
}

TEST(Tolls, NegativeOffsetRejected) {
  EXPECT_THROW(make_offset(make_linear(1.0), -0.1), Error);
}

TEST(Tolls, PigouTollRecoversOptimum) {
  // Optimum (1/2, 1/2); τ1 = 1/2·1 = 1/2, τ2 = 0. Tolled game: x + 1/2
  // vs 1 -> equilibrium at x = 1/2 exactly.
  const TollResult r = marginal_cost_tolls(pigou());
  EXPECT_NEAR(r.tolls[0], 0.5, 1e-9);
  EXPECT_NEAR(r.tolls[1], 0.0, 1e-9);
  EXPECT_NEAR(r.tolled_equilibrium[0], 0.5, 1e-7);
  EXPECT_NEAR(r.tolled_latency_cost, 0.75, 1e-7);
  EXPECT_NEAR(r.revenue, 0.25, 1e-7);  // 1/2 flow pays 1/2 toll
  EXPECT_LT(r.residual, 1e-7);
}

TEST(Tolls, Fig4TollRecoversOptimum) {
  const TollResult r = marginal_cost_tolls(fig4_instance());
  const Fig4Expected e = fig4_expected();
  EXPECT_LT(r.residual, 1e-7);
  EXPECT_NEAR(r.tolled_latency_cost, e.optimum_cost, 1e-7);
  // Constant link has zero derivative -> zero toll.
  EXPECT_NEAR(r.tolls[4], 0.0, 1e-12);
}

TEST(Tolls, RandomParallelFamilies) {
  Rng rng(400);
  for (int trial = 0; trial < 15; ++trial) {
    const ParallelLinks m = random_polynomial_links(rng, 6, 1.8);
    const TollResult r = marginal_cost_tolls(m);
    EXPECT_LT(r.residual, 1e-6) << "trial " << trial;
    EXPECT_NEAR(r.tolled_latency_cost, r.optimum_cost, 1e-6)
        << "trial " << trial;
    EXPECT_GE(r.revenue, -1e-12);
  }
}

TEST(Tolls, NetworkTollsRecoverOptimumOnFig7) {
  const TollResult r = marginal_cost_tolls(fig7_instance(0.05));
  EXPECT_LT(r.residual, 1e-5);
  EXPECT_NEAR(r.tolled_latency_cost, r.optimum_cost, 1e-5);
}

TEST(Tolls, NetworkTollsFixBraess) {
  // Tolling the classic Braess graph makes the shortcut unattractive.
  const TollResult r = marginal_cost_tolls(braess_classic());
  EXPECT_LT(r.residual, 1e-5);
  EXPECT_NEAR(r.tolled_latency_cost, 1.5, 1e-5);
  EXPECT_NEAR(r.untolled_nash_cost, 2.0, 1e-5);
}

TEST(Tolls, GridNetworks) {
  Rng rng(401);
  const NetworkInstance inst = grid_city(rng, 3, 4, 2.0);
  const TollResult r = marginal_cost_tolls(inst);
  EXPECT_LT(r.residual, 1e-4);
  EXPECT_NEAR(r.tolled_latency_cost, r.optimum_cost,
              1e-4 * std::fmax(1.0, r.optimum_cost));
}

TEST(Tolls, MulticommodityNetworks) {
  Rng rng(402);
  const NetworkInstance inst = grid_city_multicommodity(rng, 4, 4, 3, 0.3, 0.8);
  const TollResult r = marginal_cost_tolls(inst);
  EXPECT_LT(r.residual, 1e-3);
}

TEST(Tolls, StackelbergAndTollsReachTheSameCost) {
  // The paper's two instruments side by side: β of the flow vs τ revenue,
  // identical final cost C(O).
  Rng rng(403);
  for (int trial = 0; trial < 10; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 5, 2.0);
    const OpTopResult stackelberg = op_top(m);
    const TollResult tolls = marginal_cost_tolls(m);
    EXPECT_NEAR(stackelberg.induced_cost, tolls.tolled_latency_cost,
                1e-6 * std::fmax(1.0, tolls.optimum_cost))
        << "trial " << trial;
  }
}

TEST(Tolls, ZeroTollsWhenNashOptimal) {
  // Identical links: marginal tolls exist but leave the equilibrium as is
  // (it was already optimal).
  const ParallelLinks m{{make_linear(1.0), make_linear(1.0)}, 1.0};
  const TollResult r = marginal_cost_tolls(m);
  EXPECT_NEAR(r.untolled_nash_cost, r.optimum_cost, 1e-9);
  EXPECT_LT(r.residual, 1e-7);
}

TEST(Tolls, WithTollsRejectsSizeMismatch) {
  const ParallelLinks m = pigou();
  const std::vector<double> bad = {0.1};
  EXPECT_THROW(with_tolls(m, bad), Error);
  const NetworkInstance inst = braess_classic();
  EXPECT_THROW(with_tolls(inst, bad), Error);
}

}  // namespace
}  // namespace stackroute

// Table formatting and instance (de)serialization round-trips.
#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <locale>
#include <sstream>
#include <stdexcept>
#include <streambuf>

#include "stackroute/equilibrium/network.h"
#include "stackroute/equilibrium/parallel.h"
#include "stackroute/io/serialize.h"
#include "stackroute/io/table.h"
#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1.0), "1.0");
  EXPECT_EQ(format_double(4.0 / 3.0, 4), "1.3333");
  EXPECT_EQ(format_double(-2.25), "-2.25");
}

TEST(FormatDouble, HandlesSpecials) {
  EXPECT_EQ(format_double(kInf), "inf");
  EXPECT_EQ(format_double(-kInf), "-inf");
  EXPECT_EQ(format_double(std::nan("")), "nan");
}

TEST(Table, MarkdownLayout) {
  Table t({"link", "flow"});
  t.add_row({"M1", "0.35"});
  t.add_row({"M2", "0.2333"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| link | flow   |"), std::string::npos);
  EXPECT_NE(md.find("| M1   | 0.35   |"), std::string::npos);
  EXPECT_NE(md.find("|------|--------|"), std::string::npos);
}

TEST(Table, CsvLayout) {
  Table t({"a", "b"});
  t.add_numeric_row({1.0, 0.5});
  EXPECT_EQ(t.to_csv(), "a,b\n1.0,0.5\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(Table, DuplicateHeadersThrow) {
  EXPECT_THROW(Table({"x", "y", "x"}), Error);
}

TEST(Table, JsonLayout) {
  Table t({"link", "beta"});
  t.add_row({"M1", "0.5"});
  t.add_row({"say \"hi\"", "nan"});
  const std::string json = t.to_json();
  // Numeric cells unquoted; nan and free text quoted (and escaped).
  EXPECT_NE(json.find("\"beta\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"link\": \"M1\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\": \"nan\""), std::string::npos);
  EXPECT_NE(json.find("\"say \\\"hi\\\"\""), std::string::npos);
}

TEST(Table, JsonEmptyTable) {
  EXPECT_EQ(Table({"a"}).to_json(), "[\n]\n");
}

TEST(Table, JsonOnlyEmitsStrictNumbersUnquoted) {
  // strtod accepts these, RFC 8259 does not: they must stay strings.
  Table t({"a", "b", "c", "d", "e"});
  t.add_row({"+5", ".5", "1.", "0x1A", "01"});
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"a\": \"+5\""), std::string::npos);
  EXPECT_NE(json.find("\"b\": \".5\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": \"1.\""), std::string::npos);
  EXPECT_NE(json.find("\"d\": \"0x1A\""), std::string::npos);
  EXPECT_NE(json.find("\"e\": \"01\""), std::string::npos);
  // Valid JSON numbers stay bare, including exponent forms.
  Table n({"x", "y", "z"});
  n.add_row({"-2.25", "1e-9", "0.5"});
  const std::string bare = n.to_json();
  EXPECT_NE(bare.find("\"x\": -2.25"), std::string::npos);
  EXPECT_NE(bare.find("\"y\": 1e-9"), std::string::npos);
  EXPECT_NE(bare.find("\"z\": 0.5"), std::string::npos);
}

TEST(Table, JsonEscapesControlCharacters) {
  Table t({"a"});
  t.add_row({std::string("esc\x1b") + "\x01" "end"});
  const std::string json = t.to_json();
  EXPECT_NE(json.find("esc\\u001b\\u0001end"), std::string::npos);
}

TEST(Serialize, ParallelLinksFileRoundTrip) {
  // Through a real file, as sweep specs load instances from disk.
  const std::string path = "io_test_roundtrip.links";
  const ParallelLinks m = fig4_instance();
  {
    std::ofstream out(path);
    write_instance(out, m);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const ParallelLinks back = read_parallel_links(in);
  ASSERT_EQ(back.size(), m.size());
  EXPECT_DOUBLE_EQ(back.demand, m.demand);
  EXPECT_NEAR(price_of_anarchy(back), price_of_anarchy(m), 1e-12);
}

TEST(Serialize, NetworkFileRoundTrip) {
  const std::string path = "io_test_roundtrip.net";
  const NetworkInstance inst = braess_classic();
  {
    std::ofstream out(path);
    write_instance(out, inst);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const NetworkInstance back = read_network(in);
  EXPECT_EQ(back.graph.num_edges(), inst.graph.num_edges());
  const NetworkAssignment a = solve_nash(inst);
  const NetworkAssignment b = solve_nash(back);
  EXPECT_NEAR(max_abs_diff(a.edge_flow, b.edge_flow), 0.0, 1e-9);
}

TEST(Serialize, ParallelLinksRoundTrip) {
  const ParallelLinks m = fig4_instance();
  const ParallelLinks back = parallel_links_from_string(to_string(m));
  ASSERT_EQ(back.size(), m.size());
  EXPECT_DOUBLE_EQ(back.demand, m.demand);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (double x : {0.0, 0.25, 0.7, 1.3}) {
      EXPECT_DOUBLE_EQ(back.links[i]->value(x), m.links[i]->value(x));
    }
  }
  // Equilibrium of the round-tripped instance is identical.
  const LinkAssignment a = solve_nash(m);
  const LinkAssignment b = solve_nash(back);
  EXPECT_NEAR(max_abs_diff(a.flows, b.flows), 0.0, 1e-12);
}

TEST(Serialize, NetworkRoundTrip) {
  const NetworkInstance inst = fig7_instance(0.05);
  const NetworkInstance back = network_from_string(to_string(inst));
  EXPECT_EQ(back.graph.num_nodes(), inst.graph.num_nodes());
  EXPECT_EQ(back.graph.num_edges(), inst.graph.num_edges());
  ASSERT_EQ(back.commodities.size(), 1u);
  EXPECT_DOUBLE_EQ(back.commodities[0].demand, 1.0);
  const NetworkAssignment a = solve_optimum(inst);
  const NetworkAssignment b = solve_optimum(back);
  EXPECT_NEAR(max_abs_diff(a.edge_flow, b.edge_flow), 0.0, 1e-9);
}

TEST(Serialize, MulticommodityRoundTrip) {
  Rng rng(200);
  const NetworkInstance inst = grid_city_multicommodity(rng, 3, 3, 3, 0.2, 0.6);
  const NetworkInstance back = network_from_string(to_string(inst));
  ASSERT_EQ(back.commodities.size(), inst.commodities.size());
  for (std::size_t i = 0; i < inst.commodities.size(); ++i) {
    EXPECT_EQ(back.commodities[i].source, inst.commodities[i].source);
    EXPECT_EQ(back.commodities[i].sink, inst.commodities[i].sink);
    EXPECT_DOUBLE_EQ(back.commodities[i].demand, inst.commodities[i].demand);
  }
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a Pigou instance\n"
      "parallel_links 1\n"
      "\n"
      "link affine 1 0\n"
      "# the slow constant link\n"
      "link constant 1\n";
  const ParallelLinks m = parallel_links_from_string(text);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_NEAR(price_of_anarchy(m), 4.0 / 3.0, 1e-9);
}

TEST(Serialize, MalformedDocumentsThrow) {
  EXPECT_THROW(parallel_links_from_string(""), Error);
  EXPECT_THROW(parallel_links_from_string("network 3\n"), Error);
  EXPECT_THROW(parallel_links_from_string("parallel_links 1\nlink bogus 1\n"),
               Error);
  EXPECT_THROW(network_from_string("network 2\nedge 0 1 affine 1\n"),
               Error);  // affine takes 2 params
  EXPECT_THROW(network_from_string("network 2\nfrobnicate\n"), Error);
  // Structurally invalid: no commodity.
  EXPECT_THROW(network_from_string("network 2\nedge 0 1 affine 1 0\n"),
               Error);
}

void expect_error_mentions(const std::function<void()>& fn,
                           std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected stackroute::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    for (const char* fragment : fragments) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "missing '" << fragment << "' in: " << what;
    }
  }
}

TEST(Serialize, TrailingGarbageRejectedWithLineNumber) {
  // The old parameter loop stopped at the first non-numeric token, so
  // 'link affine 1.0 2.0 oops' parsed as a valid 2-parameter link.
  expect_error_mentions(
      [] {
        parallel_links_from_string(
            "parallel_links 1\nlink affine 1 0\nlink affine 1.0 2.0 oops\n");
      },
      {"line 3", "oops"});
  // Physical line numbers count comments and blank lines.
  expect_error_mentions(
      [] {
        parallel_links_from_string(
            "# header comment\n\nparallel_links 1\n"
            "link affine 1 0\nlink constant 1 garbage\n");
      },
      {"line 5", "garbage"});
  expect_error_mentions(
      [] { parallel_links_from_string("parallel_links 1 extra\nlink affine 1 0\n"); },
      {"line 1", "extra"});
  expect_error_mentions(
      [] {
        network_from_string(
            "network 2\nedge 0 1 affine 1 0\ncommodity 0 1 1.0 junk\n");
      },
      {"line 3", "junk"});
  expect_error_mentions(
      [] {
        network_from_string(
            "network 2\nedge 0 1 affine 1 0 stray\ncommodity 0 1 1\n");
      },
      {"line 2", "stray"});
}

TEST(Serialize, BadKindsAndCountsRejectedWithLineNumber) {
  expect_error_mentions(
      [] { parallel_links_from_string("parallel_links 1\nlink bogus 1\n"); },
      {"line 2", "bogus"});
  expect_error_mentions([] { network_from_string("network -3\n"); },
                        {"line 1", "negative node count"});
  // Out-of-range endpoints carry the line too.
  expect_error_mentions(
      [] {
        network_from_string(
            "network 2\nedge 0 5 affine 1 0\ncommodity 0 1 1\n");
      },
      {"line 2"});
  // Wrong parameter arity for the kind.
  expect_error_mentions(
      [] { network_from_string("network 2\nedge 0 1 affine 1\n"); },
      {"line 2"});
}

TEST(Serialize, NonFiniteFieldsRejectedWithLineNumber) {
  // NaN/Inf text in any numeric field dies with that line's number —
  // either stream extraction rejects the token outright or the reader's
  // isfinite() guards catch the parsed value; no non-finite number may
  // reach a returned instance either way.
  expect_error_mentions(
      [] { parallel_links_from_string("parallel_links nan\nlink constant 1\n"); },
      {"line 1"});
  expect_error_mentions(
      [] { parallel_links_from_string("parallel_links 1\nlink affine inf 0\n"); },
      {"line 2"});
  expect_error_mentions(
      [] {
        network_from_string(
            "network 2\nedge 0 1 constant nan\ncommodity 0 1 1\n");
      },
      {"line 2"});
  expect_error_mentions(
      [] {
        network_from_string(
            "network 2\nedge 0 1 affine 1 0\ncommodity 0 1 inf\n");
      },
      {"line 3"});
}

TEST(Serialize, EmptyInstancesRejectedWithLineNumber) {
  // Structurally empty documents: a header with no link/edge lines must
  // not survive to a (meaningless) instance.
  expect_error_mentions(
      [] { parallel_links_from_string("parallel_links 1\n# nothing else\n"); },
      {"no links"});
  expect_error_mentions(
      [] { network_from_string("network 2\ncommodity 0 1 1\n"); },
      {"no edge lines"});
}

// A streambuf that serves a prefix, then fails hard — a disk error or a
// pipe torn down mid-transfer. getline() sets badbit and stops exactly
// like EOF would, so LineReader must check bad() itself.
class TruncatingBuf : public std::streambuf {
 public:
  explicit TruncatingBuf(std::string prefix) : text_(std::move(prefix)) {
    setg(text_.data(), text_.data(), text_.data() + text_.size());
  }

 protected:
  int_type underflow() override { throw std::runtime_error("disk error"); }

 private:
  std::string text_;
};

TEST(Serialize, BadStreamMidReadNeverYieldsPartialInstance) {
  // The prefix alone parses as a complete 2-link Pigou instance; without
  // the bad() check the reader would return it and silently drop whatever
  // the failed read lost.
  TruncatingBuf buf("parallel_links 1\nlink affine 1 0\nlink constant 1\n");
  std::istream is(&buf);
  expect_error_mentions([&] { read_parallel_links(is); },
                        {"I/O error", "line 3"});

  TruncatingBuf net_buf(
      "network 2\nedge 0 1 affine 1 0\ncommodity 0 1 1\n");
  std::istream net_is(&net_buf);
  expect_error_mentions([&] { read_network(net_is); },
                        {"I/O error", "line 3"});
}

// A numpunct facet whose decimal point is ',' — the de_DE shape — without
// depending on which locales the host has installed.
class CommaDecimal : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

TEST(Serialize, RoundTripsUnderCommaDecimalGlobalLocale) {
  const std::locale saved = std::locale::global(
      std::locale(std::locale::classic(), new CommaDecimal));
  struct RestoreLocale {
    std::locale loc;
    ~RestoreLocale() { std::locale::global(loc); }
  } restore{saved};

  ParallelLinks m;
  m.demand = 1.0 / 3.0;
  m.links = {make_affine(0.1, 2.5), make_bpr(1.5, 2.25, 0.15, 4.0),
             make_mm1(12345.678)};
  const std::string text = to_string(m);
  // The writer must ignore the global locale: no comma decimals, no
  // thousands grouping.
  EXPECT_EQ(text.find(','), std::string::npos) << text;
  const ParallelLinks back = parallel_links_from_string(text);
  ASSERT_EQ(back.size(), m.size());
  EXPECT_EQ(back.demand, m.demand);  // exact, not approximate
  for (std::size_t i = 0; i < m.size(); ++i) {
    const auto pa = m.links[i]->params();
    const auto pb = back.links[i]->params();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t j = 0; j < pa.size(); ++j) EXPECT_EQ(pa[j], pb[j]);
  }

  const NetworkInstance inst = fig7_instance(0.05);
  const NetworkInstance net_back = network_from_string(to_string(inst));
  EXPECT_EQ(net_back.graph.num_edges(), inst.graph.num_edges());
  EXPECT_EQ(net_back.commodities[0].demand, inst.commodities[0].demand);
}

TEST(Serialize, WriterRestoresCallerStreamFormatting) {
  std::ostringstream os;
  const std::locale comma(std::locale::classic(), new CommaDecimal);
  os.imbue(comma);
  os.precision(3);
  write_instance(os, fig4_instance());
  // Output is classic-locale, full-precision...
  EXPECT_EQ(os.str().find(','), std::string::npos);
  // ...but the caller's stream settings come back untouched.
  EXPECT_EQ(os.precision(), 3);
  EXPECT_TRUE(os.getloc() == comma);
}

TEST(Serialize, MM1AndBprSurvive) {
  ParallelLinks m;
  m.demand = 1.0;
  m.links = {make_mm1(2.5), make_bpr(1.0, 2.0, 0.15, 4.0)};
  const ParallelLinks back = parallel_links_from_string(to_string(m));
  EXPECT_DOUBLE_EQ(back.links[0]->capacity(), 2.5);
  EXPECT_DOUBLE_EQ(back.links[1]->value(2.0), 1.15);
}

}  // namespace
}  // namespace stackroute

// The TNTP `_net.tntp` reader: format coverage on inline documents plus
// the shipped SiouxFalls instance.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <string>

#include "stackroute/io/tntp.h"
#include "stackroute/latency/families.h"
#include "stackroute/util/error.h"

namespace stackroute {
namespace {

const char* kTinyNet =
    "<NUMBER OF ZONES> 2\n"
    "<NUMBER OF NODES> 3\n"
    "<FIRST THRU NODE> 1\n"
    "<NUMBER OF LINKS> 3\n"
    "<ORIGINAL HEADER> something ignorable\n"
    "<END OF METADATA>\n"
    "\n"
    "~ \tInit node \tTerm node \tCapacity \tLength \tFree Flow Time \tB\t"
    "Power\tSpeed limit \tToll \tLink Type\t;\n"
    "\t1\t2\t100.5\t6\t6\t0.15\t4\t0\t0\t1\t;\n"
    "\t2\t3\t50\t2\t2\t0.15\t4\t0\t0\t1\t;\n"
    "\t1\t3\t10\t9\t9\t0.15\t4\t0\t0\t1\t;\n";

TEST(Tntp, ParsesMetadataAndLinks) {
  std::istringstream is(kTinyNet);
  TntpMetadata meta;
  const NetworkInstance inst = read_tntp_network(is, &meta);
  EXPECT_EQ(meta.num_nodes, 3);
  EXPECT_EQ(meta.num_links, 3);
  EXPECT_EQ(meta.num_zones, 2);
  EXPECT_EQ(meta.first_thru_node, 1);
  EXPECT_EQ(inst.graph.num_nodes(), 3);
  EXPECT_EQ(inst.graph.num_edges(), 3);
  EXPECT_TRUE(inst.commodities.empty());  // _net.tntp carries no demands
  // 1-based ids converted; edge 0 is 1->2.
  EXPECT_EQ(inst.graph.edge(0).tail, 0);
  EXPECT_EQ(inst.graph.edge(0).head, 1);
  // BPR: value at 0 is the free-flow time; at capacity it is t0 * 1.15.
  const auto& lat = *inst.graph.edge(0).latency;
  EXPECT_EQ(lat.kind(), LatencyKind::kBpr);
  EXPECT_DOUBLE_EQ(lat.value(0.0), 6.0);
  EXPECT_DOUBLE_EQ(lat.value(100.5), 6.0 * 1.15);
}

TEST(Tntp, RowsWithoutSemicolonParse) {
  std::istringstream is(
      "<NUMBER OF NODES> 2\n<END OF METADATA>\n"
      "1 2 100 1 1 0.15 4 0 0 1\n");
  const NetworkInstance inst = read_tntp_network(is);
  EXPECT_EQ(inst.graph.num_edges(), 1);
}

TEST(Tntp, ZeroBDegeneratesToConstant) {
  std::istringstream is(
      "<NUMBER OF NODES> 2\n<END OF METADATA>\n"
      "1 2 100 1 3 0 4 0 0 1 ;\n");
  const NetworkInstance inst = read_tntp_network(is);
  const auto& lat = *inst.graph.edge(0).latency;
  EXPECT_TRUE(lat.is_constant());
  EXPECT_DOUBLE_EQ(lat.value(50.0), 3.0);
}

TEST(Tntp, ErrorsCarryLineNumbers) {
  const auto expect_line = [](const std::string& doc,
                              const std::string& line_tag) {
    std::istringstream is(doc);
    try {
      read_tntp_network(is);
      FAIL() << "expected Error for: " << doc;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(line_tag), std::string::npos)
          << e.what();
    }
  };
  // Row before the metadata terminator (row is physical line 2).
  expect_line("<NUMBER OF NODES> 2\n1 2 100 1 1 0.15 4 0 0 1 ;\n", "line 2");
  // Non-positive declared node count, rejected at the tag itself — even
  // with zero link rows.
  expect_line("<NUMBER OF NODES> 0\n<END OF METADATA>\n", "line 1");
  expect_line("<NUMBER OF NODES> -3\n<END OF METADATA>\n", "line 1");
  // Endpoint out of range on line 3.
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "1 7 100 1 1 0.15 4 0 0 1 ;\n",
              "line 3");
  // Non-numeric garbage inside a row.
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "1 2 100 1 1 0.15 4 oops 0 1 ;\n",
              "line 3");
  // Garbage after the terminating semicolon.
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "1 2 100 1 1 0.15 4 0 0 1 ; trailing\n",
              "line 3");
  // Self-loop.
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "2 2 100 1 1 0.15 4 0 0 1 ;\n",
              "line 3");
  // Bad link parameters.
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "1 2 -5 1 1 0.15 4 0 0 1 ;\n",
              "line 3");
}

TEST(Tntp, NonFiniteFieldsRejectedWithLineNumber) {
  const auto expect_line = [](const std::string& doc,
                              const std::string& line_tag) {
    std::istringstream is(doc);
    try {
      read_tntp_network(is);
      FAIL() << "expected Error for: " << doc;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(line_tag), std::string::npos)
          << e.what();
    }
  };
  // NaN/Inf in any numeric field dies with the row's line number, whether
  // the platform's stream extraction rejects the text itself or parses it
  // to a non-finite double that our isfinite() guards catch.
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "1 2 nan 1 1 0.15 4 0 0 1 ;\n",
              "line 3");  // capacity
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "1 2 100 inf 1 0.15 4 0 0 1 ;\n",
              "line 3");  // length
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "1 2 100 1 nan 0.15 4 0 0 1 ;\n",
              "line 3");  // free-flow time
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "1 2 100 1 1 inf 4 0 0 1 ;\n",
              "line 3");  // B
  expect_line("<NUMBER OF NODES> 2\n<END OF METADATA>\n"
              "1 2 100 1 1 0.15 nan 0 0 1 ;\n",
              "line 3");  // power
}

TEST(Tntp, ZeroLinkDocumentRejected) {
  std::istringstream is("<NUMBER OF NODES> 2\n<END OF METADATA>\n");
  try {
    read_tntp_network(is);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("no link rows"), std::string::npos)
        << e.what();
  }
}

// A streambuf that serves a prefix, then fails hard — the shape of a disk
// error or a pipe torn down mid-transfer. getline() sets badbit and stops
// exactly like EOF, so the reader must check bad() itself.
class TruncatingBuf : public std::streambuf {
 public:
  explicit TruncatingBuf(std::string prefix) : text_(std::move(prefix)) {
    setg(text_.data(), text_.data(), text_.data() + text_.size());
  }

 protected:
  int_type underflow() override { throw std::runtime_error("disk error"); }

 private:
  std::string text_;
};

TEST(Tntp, BadStreamMidReadNeverYieldsPartialInstance) {
  // The prefix alone is a well-formed (if short) document: without the
  // bad() check the reader would happily return a 1-link instance.
  TruncatingBuf buf(
      "<NUMBER OF NODES> 3\n<END OF METADATA>\n"
      "1 2 100 1 1 0.15 4 0 0 1 ;\n");
  std::istream is(&buf);
  try {
    read_tntp_network(is);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("I/O error"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }
}

TEST(Tntp, StructuralErrors) {
  // No metadata terminator at all.
  {
    std::istringstream is("<NUMBER OF NODES> 2\n");
    EXPECT_THROW(read_tntp_network(is), Error);
  }
  // Declared link count disagrees with the rows.
  {
    std::istringstream is(
        "<NUMBER OF NODES> 2\n<NUMBER OF LINKS> 2\n<END OF METADATA>\n"
        "1 2 100 1 1 0.15 4 0 0 1 ;\n");
    EXPECT_THROW(read_tntp_network(is), Error);
  }
  // Missing node count.
  {
    std::istringstream is(
        "<END OF METADATA>\n1 2 100 1 1 0.15 4 0 0 1 ;\n");
    EXPECT_THROW(read_tntp_network(is), Error);
  }
  // Unreadable path.
  EXPECT_THROW(read_tntp_network_file("/nonexistent/net.tntp"), Error);
}

TEST(Tntp, SiouxFallsLoads) {
  TntpMetadata meta;
  const NetworkInstance inst = read_tntp_network_file(
      std::string(STACKROUTE_SOURCE_DIR) +
          "/examples/instances/SiouxFalls_net.tntp",
      &meta);
  EXPECT_EQ(meta.num_nodes, 24);
  EXPECT_EQ(meta.num_links, 76);
  EXPECT_EQ(meta.num_zones, 24);
  EXPECT_EQ(inst.graph.num_nodes(), 24);
  EXPECT_EQ(inst.graph.num_edges(), 76);
  // First link: 1 -> 2, free-flow time 6.
  EXPECT_EQ(inst.graph.edge(0).tail, 0);
  EXPECT_EQ(inst.graph.edge(0).head, 1);
  EXPECT_DOUBLE_EQ(inst.graph.edge(0).latency->value(0.0), 6.0);
  // Every link is a BPR (or constant-degenerate) latency with capacity
  // recorded in params()[1].
  for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    EXPECT_EQ(inst.graph.edge(e).latency->kind(), LatencyKind::kBpr);
  }
}

// ---- `_trips.tntp` demand documents ------------------------------------

const char* kTinyTrips =
    "<NUMBER OF ZONES> 3\n"
    "<TOTAL OD FLOW> 700.0\n"
    "<END OF METADATA>\n"
    "\n"
    "~ comment line\n"
    "Origin  1\n"
    "    1 :     50.0;    2 :     100.0;    3 :     200.0;\n"
    "Origin 2\n"
    "    3 :     300.0;\n"
    "    1 :     0.0;\n"
    "Origin 3\n"
    "    2 :     25.0;    2 :     25.0\n";

TEST(TntpTrips, ParsesOriginBlocks) {
  std::istringstream is(kTinyTrips);
  TntpMetadata meta;
  const std::vector<Commodity> trips = read_tntp_trips(is, &meta);
  EXPECT_EQ(meta.num_zones, 3);
  EXPECT_DOUBLE_EQ(meta.total_od_flow, 700.0);
  // Intrazonal (1:1) and zero-demand (2->1) entries skipped; the repeated
  // 3->2 pair sums; ids converted to 0-based.
  ASSERT_EQ(trips.size(), 4u);
  EXPECT_EQ(trips[0].source, 0u);
  EXPECT_EQ(trips[0].sink, 1u);
  EXPECT_DOUBLE_EQ(trips[0].demand, 100.0);
  EXPECT_EQ(trips[1].sink, 2u);
  EXPECT_DOUBLE_EQ(trips[1].demand, 200.0);
  EXPECT_EQ(trips[2].source, 1u);
  EXPECT_DOUBLE_EQ(trips[2].demand, 300.0);
  EXPECT_EQ(trips[3].source, 2u);
  EXPECT_EQ(trips[3].sink, 1u);
  EXPECT_DOUBLE_EQ(trips[3].demand, 50.0);
}

TEST(TntpTrips, ErrorsCarryLineNumbers) {
  const auto expect_fail_at = [](const std::string& doc, int line,
                                 const std::string& needle) {
    std::istringstream is(doc);
    try {
      read_tntp_trips(is);
      FAIL() << "expected a parse error containing '" << needle << "'";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_TRUE(what.find("line " + std::to_string(line) + ":") == 0)
          << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };
  const std::string head = "<NUMBER OF ZONES> 2\n<END OF METADATA>\n";
  // Destination entry before any Origin line.
  expect_fail_at(head + "1 : 5.0;\n", 3, "before any 'Origin'");
  // Malformed Origin line.
  expect_fail_at(head + "Origin one\n", 3, "expected 'Origin N'");
  // Zone id beyond <NUMBER OF ZONES>.
  expect_fail_at(head + "Origin 9\n", 3, "exceeds");
  expect_fail_at(head + "Origin 1\n9 : 5.0;\n", 4, "exceeds");
  // Negative demand. (Non-finite spellings like "nan" already fail the
  // numeric extraction itself and surface as the syntax error below.)
  expect_fail_at(head + "Origin 1\n2 : -5.0;\n", 4, "finite and >= 0");
  // Entry syntax garbage, and a row before the metadata ends.
  expect_fail_at(head + "Origin 1\n2 = 5.0;\n", 4, "expected 'dest : flow;'");
  expect_fail_at("<NUMBER OF ZONES> 2\nOrigin 1\n", 2,
                 "before <END OF METADATA>");
}

TEST(TntpTrips, StructuralErrors) {
  {
    // No <END OF METADATA>.
    std::istringstream is("<NUMBER OF ZONES> 2\n");
    EXPECT_THROW(read_tntp_trips(is), Error);
  }
  {
    // No positive interzonal demand at all.
    std::istringstream is(
        "<END OF METADATA>\nOrigin 1\n1 : 5.0; 2 : 0.0;\n");
    EXPECT_THROW(read_tntp_trips(is), Error);
  }
  EXPECT_THROW(read_tntp_trips_file("/nonexistent/trips.tntp"), Error);
}

}  // namespace
}  // namespace stackroute

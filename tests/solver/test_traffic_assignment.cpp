// Path-equilibration solver against closed-form instances (Pigou as a
// network, classic Braess, Fig 7) and structural invariants on random
// networks.
#include "stackroute/solver/traffic_assignment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

double commodity_total(const std::vector<PathFlow>& paths) {
  double total = 0.0;
  for (const auto& pf : paths) total += pf.flow;
  return total;
}

TEST(AssignTraffic, PigouAsNetworkNash) {
  const NetworkInstance inst = to_network(pigou());
  const auto r = assign_traffic(inst, FlowObjective::kBeckmann);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.edge_flow[0], 1.0, 1e-8);
  EXPECT_NEAR(r.edge_flow[1], 0.0, 1e-8);
}

TEST(AssignTraffic, PigouAsNetworkOptimum) {
  const NetworkInstance inst = to_network(pigou());
  const auto r = assign_traffic(inst, FlowObjective::kTotalCost);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.edge_flow[0], 0.5, 1e-8);
  EXPECT_NEAR(r.edge_flow[1], 0.5, 1e-8);
}

TEST(AssignTraffic, BraessClassicNashCostTwo) {
  const NetworkInstance inst = braess_classic();
  const auto r = assign_traffic(inst, FlowObjective::kBeckmann);
  EXPECT_TRUE(r.converged);
  // All flow on the zigzag s->v->w->t: edges 0, 2, 4.
  EXPECT_NEAR(r.edge_flow[0], 1.0, 1e-7);
  EXPECT_NEAR(r.edge_flow[2], 1.0, 1e-7);
  EXPECT_NEAR(r.edge_flow[4], 1.0, 1e-7);
  EXPECT_NEAR(r.edge_flow[1], 0.0, 1e-7);
  EXPECT_NEAR(r.edge_flow[3], 0.0, 1e-7);
}

TEST(AssignTraffic, BraessClassicOptimumSplitsAndSkipsShortcut) {
  const NetworkInstance inst = braess_classic();
  const auto r = assign_traffic(inst, FlowObjective::kTotalCost);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.edge_flow[0], 0.5, 1e-7);
  EXPECT_NEAR(r.edge_flow[1], 0.5, 1e-7);
  EXPECT_NEAR(r.edge_flow[2], 0.0, 1e-7);  // shortcut unused at optimum
  EXPECT_NEAR(r.edge_flow[3], 0.5, 1e-7);
  EXPECT_NEAR(r.edge_flow[4], 0.5, 1e-7);
}

TEST(AssignTraffic, BraessWithoutShortcutNashIsBetter) {
  const auto with = assign_traffic(braess_classic(), FlowObjective::kBeckmann);
  const auto without =
      assign_traffic(braess_without_shortcut(), FlowObjective::kBeckmann);
  const auto cost_of = [](const NetworkInstance& inst,
                          const std::vector<double>& f) {
    double c = 0.0;
    for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
      c += f[static_cast<std::size_t>(e)] *
           inst.graph.edge(e).latency->value(f[static_cast<std::size_t>(e)]);
    }
    return c;
  };
  const double c_with = cost_of(braess_classic(), with.edge_flow);
  const double c_without =
      cost_of(braess_without_shortcut(), without.edge_flow);
  EXPECT_NEAR(c_with, 2.0, 1e-6);      // the paradox: adding the edge hurts
  EXPECT_NEAR(c_without, 1.5, 1e-6);
}

TEST(AssignTraffic, Fig7OptimumMatchesCaption) {
  for (double eps : {0.0, 0.02, 0.1}) {
    const NetworkInstance inst = fig7_instance(eps);
    const Fig7Expected expected = fig7_expected(eps);
    const auto r = assign_traffic(inst, FlowObjective::kTotalCost);
    EXPECT_TRUE(r.converged);
    for (std::size_t e = 0; e < 5; ++e) {
      EXPECT_NEAR(r.edge_flow[e], expected.optimum_edges[e], 2e-7)
          << "eps=" << eps << " edge " << e;
    }
  }
}

TEST(AssignTraffic, Fig7NashMatchesDerivation) {
  // Derived in generators.h: f_zigzag = 1−4ε, outer paths 2ε each, all
  // used paths at latency 3−8ε.
  const double eps = 0.05;
  const NetworkInstance inst = fig7_instance(eps);
  const auto r = assign_traffic(inst, FlowObjective::kBeckmann);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.edge_flow[2], 1.0 - 4.0 * eps, 1e-7);  // v->w carries f0
  EXPECT_NEAR(r.edge_flow[1], 2.0 * eps, 1e-7);        // s->w carries f2
}

TEST(AssignTraffic, PathsDecomposeTheEdgeFlow) {
  Rng rng(31);
  const NetworkInstance inst = random_layered_dag(rng, 3, 3, 0.6, 1.5);
  const auto r = assign_traffic(inst, FlowObjective::kBeckmann);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(commodity_total(r.commodity_paths[0]), 1.5, 1e-9);
  std::vector<double> rebuilt(static_cast<std::size_t>(inst.graph.num_edges()),
                              0.0);
  for (const auto& pf : r.commodity_paths[0]) {
    for (EdgeId e : pf.path) rebuilt[static_cast<std::size_t>(e)] += pf.flow;
  }
  EXPECT_NEAR(max_abs_diff(rebuilt, r.edge_flow), 0.0, 1e-9);
}

TEST(AssignTraffic, UsedPathsShareTheMinimumCost) {
  Rng rng(32);
  for (int trial = 0; trial < 10; ++trial) {
    const NetworkInstance inst = random_layered_dag(rng, 3, 4, 0.5, 2.0);
    const auto r = assign_traffic(inst, FlowObjective::kBeckmann);
    ASSERT_TRUE(r.converged);
    std::vector<double> lat(static_cast<std::size_t>(inst.graph.num_edges()));
    for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
      lat[static_cast<std::size_t>(e)] =
          inst.graph.edge(e).latency->value(
              r.edge_flow[static_cast<std::size_t>(e)]);
    }
    double lo = kInf, hi = -kInf;
    for (const auto& pf : r.commodity_paths[0]) {
      if (pf.flow <= 1e-9) continue;
      const double c = path_cost(lat, pf.path);
      lo = std::fmin(lo, c);
      hi = std::fmax(hi, c);
    }
    EXPECT_LE(hi - lo, 1e-7) << "trial " << trial;
  }
}

TEST(AssignTraffic, MultiCommodityConservesAllDemands) {
  Rng rng(33);
  const NetworkInstance inst = grid_city_multicommodity(rng, 4, 4, 4, 0.3, 0.8);
  const auto r = assign_traffic(inst, FlowObjective::kBeckmann);
  EXPECT_TRUE(r.converged);
  for (std::size_t i = 0; i < inst.commodities.size(); ++i) {
    EXPECT_NEAR(commodity_total(r.commodity_paths[i]),
                inst.commodities[i].demand, 1e-9);
  }
}

TEST(AssignTraffic, PreloadShiftsTheEquilibrium) {
  // Pigou with the optimum preloaded on the constant link: followers get
  // demand 1/2 and should now keep the fast link at 1/2 (the Fig. 2-3
  // story in network form).
  NetworkInstance inst = to_network(pigou());
  inst.commodities[0].demand = 0.5;  // followers only
  const std::vector<double> preload = {0.0, 0.5};
  const auto r = assign_traffic(inst, FlowObjective::kBeckmann, preload);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.edge_flow[0], 0.5, 1e-8);
  EXPECT_NEAR(r.edge_flow[1], 0.0, 1e-8);
}

TEST(AssignTraffic, ObjectiveDecreasesVsAllOrNothingStart) {
  Rng rng(34);
  const NetworkInstance inst = grid_city(rng, 3, 3, 2.0);
  const auto nash = assign_traffic(inst, FlowObjective::kBeckmann);
  const auto opt = assign_traffic(inst, FlowObjective::kTotalCost);
  const std::vector<LatencyPtr> lat = inst.graph.latencies();
  // System cost at optimum <= system cost at Nash.
  EXPECT_LE(total_cost(lat, opt.edge_flow),
            total_cost(lat, nash.edge_flow) + 1e-9);
}

TEST(AssignTraffic, InvalidInstanceThrows) {
  NetworkInstance inst;
  inst.graph = Graph(2);
  inst.graph.add_edge(0, 1, make_linear(1.0));
  EXPECT_THROW(assign_traffic(inst, FlowObjective::kBeckmann), Error);
}


TEST(AssignTraffic, WarmStartMatchesColdSolution) {
  Rng rng(5);
  const NetworkInstance base = grid_city(rng, 5, 5, 2.0);
  SolverWorkspace ws;
  const AssignmentResult prior =
      assign_traffic(base, FlowObjective::kBeckmann, {}, {}, ws);

  NetworkInstance scaled = base;
  for (auto& c : scaled.commodities) c.demand *= 1.35;
  AssignmentWarmStart warm;
  warm.commodity_paths = prior.commodity_paths;
  for (const auto& c : base.commodities) warm.demands.push_back(c.demand);

  const AssignmentResult w =
      assign_traffic(scaled, FlowObjective::kBeckmann, {}, {}, ws, warm);
  const AssignmentResult c =
      assign_traffic(scaled, FlowObjective::kBeckmann, {}, {}, ws);
  EXPECT_TRUE(w.converged);
  ASSERT_EQ(w.edge_flow.size(), c.edge_flow.size());
  for (std::size_t e = 0; e < w.edge_flow.size(); ++e) {
    EXPECT_NEAR(w.edge_flow[e], c.edge_flow[e], 1e-6) << "edge " << e;
  }
  EXPECT_NEAR(w.objective, c.objective, 1e-8 * std::fmax(1.0, c.objective));
  // The whole point: the warm solve pays far fewer exact equalization
  // steps than the cold one.
  EXPECT_LT(w.steps, c.steps);
  // Demands conserved exactly per commodity.
  for (std::size_t i = 0; i < scaled.commodities.size(); ++i) {
    double total = 0.0;
    for (const PathFlow& pf : w.commodity_paths[i]) total += pf.flow;
    EXPECT_NEAR(total, scaled.commodities[i].demand,
                1e-9 * std::fmax(1.0, scaled.commodities[i].demand));
  }
}

TEST(AssignTraffic, IllFittingWarmPayloadFallsBackToColdBitwise) {
  Rng rng(6);
  const NetworkInstance inst = grid_city(rng, 4, 4, 1.5);
  SolverWorkspace ws;
  const AssignmentResult cold =
      assign_traffic(inst, FlowObjective::kTotalCost, {}, {}, ws);

  // Wrong commodity count, a foreign path, and a demand the paths do not
  // decompose: each must be rejected up front, yielding the cold result
  // bit for bit.
  std::vector<AssignmentWarmStart> bad(3);
  bad[0].commodity_paths.resize(inst.commodities.size() + 1);
  bad[0].demands.assign(inst.commodities.size() + 1, 1.0);

  bad[1].commodity_paths.resize(inst.commodities.size());
  bad[1].demands.assign(inst.commodities.size(), 1.5);
  bad[1].commodity_paths[0].push_back(
      PathFlow{Path{static_cast<EdgeId>(0)}, 1.5});  // not an s-t path

  bad[2] = AssignmentWarmStart{};
  bad[2].commodity_paths = cold.commodity_paths;
  for (const auto& c : inst.commodities) bad[2].demands.push_back(c.demand);
  bad[2].demands[0] *= 3.0;  // lies about the decomposed demand

  for (const auto& warm : bad) {
    const AssignmentResult r =
        assign_traffic(inst, FlowObjective::kTotalCost, {}, {}, ws, warm);
    ASSERT_EQ(r.edge_flow.size(), cold.edge_flow.size());
    for (std::size_t e = 0; e < r.edge_flow.size(); ++e) {
      EXPECT_EQ(r.edge_flow[e], cold.edge_flow[e]);
    }
    EXPECT_EQ(r.steps, cold.steps);
  }
}

}  // namespace
}  // namespace stackroute

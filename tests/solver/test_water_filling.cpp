// Water-filling against closed-form Nash/optimum assignments, including
// the constant-latency plateau logic of Remark 2.5 and capacity limits.
#include "stackroute/solver/water_filling.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"

namespace stackroute {
namespace {

TEST(WaterFill, PigouNashFloodsTheFastLink) {
  const ParallelLinks m = pigou();
  const auto wf = water_fill(m.links, m.demand, LevelKind::kLatency);
  EXPECT_NEAR(wf.flows[0], 1.0, 1e-9);
  EXPECT_NEAR(wf.flows[1], 0.0, 1e-9);
  EXPECT_NEAR(wf.level, 1.0, 1e-9);
}

TEST(WaterFill, PigouOptimumBalances) {
  const ParallelLinks m = pigou();
  const auto wf = water_fill(m.links, m.demand, LevelKind::kMarginalCost);
  EXPECT_NEAR(wf.flows[0], 0.5, 1e-9);
  EXPECT_NEAR(wf.flows[1], 0.5, 1e-9);
  EXPECT_NEAR(wf.level, 1.0, 1e-9);  // marginal 2x = 1 at x = 1/2
  EXPECT_TRUE(wf.constant_plateau);
}

TEST(WaterFill, Fig4NashMatchesClosedForm) {
  const ParallelLinks m = fig4_instance();
  const Fig4Expected e = fig4_expected();
  const auto wf = water_fill(m.links, m.demand, LevelKind::kLatency);
  EXPECT_NEAR(wf.level, e.nash_level, 1e-10);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(wf.flows[i], e.nash[i], 1e-9) << "link " << i;
  }
  EXPECT_FALSE(wf.constant_plateau);  // Nash level 32/77 < 0.7
}

TEST(WaterFill, Fig4OptimumMatchesClosedForm) {
  const ParallelLinks m = fig4_instance();
  const Fig4Expected e = fig4_expected();
  const auto wf = water_fill(m.links, m.demand, LevelKind::kMarginalCost);
  EXPECT_NEAR(wf.level, e.optimum_level, 1e-10);
  EXPECT_TRUE(wf.constant_plateau);  // M5 absorbs the residual at 0.7
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(wf.flows[i], e.optimum[i], 1e-9) << "link " << i;
  }
}

TEST(WaterFill, TwoAffineLinksClosedForm) {
  // ℓ1 = x, ℓ2 = 2x, r = 3: Nash level L with L + L/2 = 3 -> L = 2.
  const std::vector<LatencyPtr> links = {make_linear(1.0), make_linear(2.0)};
  const auto wf = water_fill(links, 3.0, LevelKind::kLatency);
  EXPECT_NEAR(wf.level, 2.0, 1e-10);
  EXPECT_NEAR(wf.flows[0], 2.0, 1e-10);
  EXPECT_NEAR(wf.flows[1], 1.0, 1e-10);
}

TEST(WaterFill, InterceptKeepsSlowLinkEmpty) {
  // ℓ1 = x, ℓ2 = x + 10, r = 1: everything on link 1.
  const std::vector<LatencyPtr> links = {make_linear(1.0),
                                         make_affine(1.0, 10.0)};
  const auto wf = water_fill(links, 1.0, LevelKind::kLatency);
  EXPECT_NEAR(wf.flows[0], 1.0, 1e-12);
  EXPECT_NEAR(wf.flows[1], 0.0, 1e-12);
}

TEST(WaterFill, Mm1TwoLinksNashClosedForm) {
  // mu = {2, 1}, r = 1: L = 1, n = {1, 0} (link 2 exactly indifferent).
  const std::vector<LatencyPtr> links = {make_mm1(2.0), make_mm1(1.0)};
  const auto wf = water_fill(links, 1.0, LevelKind::kLatency);
  EXPECT_NEAR(wf.level, 1.0, 1e-9);
  EXPECT_NEAR(wf.flows[0], 1.0, 1e-8);
  EXPECT_NEAR(wf.flows[1], 0.0, 1e-8);
}

TEST(WaterFill, Mm1TwoLinksOptimumClosedForm) {
  // Closed form: x1 = 2 − 2√2/(1+√2), x2 = 3 − 2√2, D = ((1+√2)/2)².
  const std::vector<LatencyPtr> links = {make_mm1(2.0), make_mm1(1.0)};
  const auto wf = water_fill(links, 1.0, LevelKind::kMarginalCost);
  const double sqrt2 = std::sqrt(2.0);
  EXPECT_NEAR(wf.flows[1], 3.0 - 2.0 * sqrt2, 1e-9);
  EXPECT_NEAR(wf.flows[0], 1.0 - (3.0 - 2.0 * sqrt2), 1e-9);
  EXPECT_NEAR(wf.level, (3.0 + 2.0 * sqrt2) / 4.0, 1e-9);
}

TEST(WaterFill, DemandBeyondMm1CapacityThrows) {
  const std::vector<LatencyPtr> links = {make_mm1(0.6), make_mm1(0.5)};
  EXPECT_THROW(water_fill(links, 1.2, LevelKind::kLatency), Error);
}

TEST(WaterFill, ZeroDemandGivesZeroFlowsAndBaseLevel) {
  const std::vector<LatencyPtr> links = {make_affine(1.0, 0.5),
                                         make_affine(1.0, 0.2)};
  const auto wf = water_fill(links, 0.0, LevelKind::kLatency);
  EXPECT_DOUBLE_EQ(wf.flows[0], 0.0);
  EXPECT_DOUBLE_EQ(wf.flows[1], 0.0);
  EXPECT_DOUBLE_EQ(wf.level, 0.2);
}

TEST(WaterFill, AllConstantLinksSplitAtCheapestLevel) {
  const std::vector<LatencyPtr> links = {make_constant(1.0),
                                         make_constant(1.0),
                                         make_constant(2.0)};
  const auto wf = water_fill(links, 1.0, LevelKind::kLatency);
  EXPECT_TRUE(wf.constant_plateau);
  EXPECT_NEAR(wf.level, 1.0, 1e-12);
  EXPECT_NEAR(wf.flows[0], 0.5, 1e-12);
  EXPECT_NEAR(wf.flows[1], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(wf.flows[2], 0.0);
}

TEST(WaterFill, ConstantAboveLevelStaysEmpty) {
  // Increasing link absorbs everything below the constant's level.
  const std::vector<LatencyPtr> links = {make_linear(1.0), make_constant(5.0)};
  const auto wf = water_fill(links, 2.0, LevelKind::kLatency);
  EXPECT_FALSE(wf.constant_plateau);
  EXPECT_NEAR(wf.flows[0], 2.0, 1e-10);
  EXPECT_DOUBLE_EQ(wf.flows[1], 0.0);
}

TEST(WaterFill, FlowsSumToDemand) {
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 8, 2.5);
    for (LevelKind kind : {LevelKind::kLatency, LevelKind::kMarginalCost}) {
      const auto wf = water_fill(m.links, m.demand, kind);
      EXPECT_NEAR(sum(wf.flows), m.demand, 1e-9);
    }
  }
}

TEST(WaterFill, LoadedLinksSitAtTheLevel) {
  Rng rng(100);
  for (int trial = 0; trial < 25; ++trial) {
    const ParallelLinks m = random_polynomial_links(rng, 6, 1.7);
    const auto wf = water_fill(m.links, m.demand, LevelKind::kLatency);
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (wf.flows[i] > 1e-9) {
        EXPECT_NEAR(m.links[i]->value(wf.flows[i]), wf.level, 1e-7)
            << "trial " << trial << " link " << i;
      } else {
        EXPECT_GE(m.links[i]->value(0.0), wf.level - 1e-7);
      }
    }
  }
}

TEST(WaterFill, NashMonotoneInDemand) {
  // Proposition 7.1 at the solver level: r' <= r => n'_i <= n_i.
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 6, 2.0);
    const auto big = water_fill(m.links, 2.0, LevelKind::kLatency);
    const auto small = water_fill(m.links, 1.1, LevelKind::kLatency);
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_LE(small.flows[i], big.flows[i] + 1e-9);
    }
  }
}

TEST(WaterFill, RejectsBadInput) {
  const std::vector<LatencyPtr> none;
  EXPECT_THROW(water_fill(none, 1.0, LevelKind::kLatency), Error);
  const std::vector<LatencyPtr> links = {make_linear(1.0)};
  EXPECT_THROW(water_fill(links, -1.0, LevelKind::kLatency), Error);
  const std::vector<LatencyPtr> with_null = {make_linear(1.0), nullptr};
  EXPECT_THROW(water_fill(with_null, 1.0, LevelKind::kLatency), Error);
}


TEST(WaterFill, LevelHintAgreesWithColdSolve) {
  Rng rng(9);
  std::vector<LatencyPtr> links;
  for (int i = 0; i < 12; ++i) {
    links.push_back(make_affine(rng.uniform(0.3, 3.0), rng.uniform(0.0, 1.5)));
  }
  SolverWorkspace ws;
  const auto cold = water_fill(links, 4.0, LevelKind::kLatency, 1e-13, ws);
  for (double hint :
       {cold.level, 0.5 * cold.level, 2.0 * cold.level,
        std::numeric_limits<double>::quiet_NaN()}) {
    const auto warm = water_fill(links, 4.0, LevelKind::kLatency, 1e-13, ws,
                                 hint);
    EXPECT_NEAR(warm.level, cold.level, 1e-10) << "hint " << hint;
    for (std::size_t i = 0; i < links.size(); ++i) {
      EXPECT_NEAR(warm.flows[i], cold.flows[i], 1e-8) << "hint " << hint;
    }
  }
}

TEST(WaterFill, LevelHintRespectsConstantPlateau) {
  // Plateau instance: the constant link absorbs the residual regardless of
  // any (even absurd) hint.
  const std::vector<LatencyPtr> links = {make_linear(1.0), make_constant(0.5)};
  SolverWorkspace ws;
  const auto cold = water_fill(links, 3.0, LevelKind::kLatency, 1e-13, ws);
  ASSERT_TRUE(cold.constant_plateau);
  for (double hint : {0.01, 0.5, 100.0}) {
    const auto warm =
        water_fill(links, 3.0, LevelKind::kLatency, 1e-13, ws, hint);
    EXPECT_TRUE(warm.constant_plateau);
    EXPECT_DOUBLE_EQ(warm.level, cold.level);
    EXPECT_DOUBLE_EQ(warm.flows[0], cold.flows[0]);
    EXPECT_DOUBLE_EQ(warm.flows[1], cold.flows[1]);
  }
}

TEST(WaterFill, LevelHintStillDetectsInfeasibleDemand) {
  const std::vector<LatencyPtr> links = {make_mm1(1.0), make_mm1(1.5)};
  SolverWorkspace ws;
  EXPECT_THROW(water_fill(links, 4.0, LevelKind::kLatency, 1e-13, ws, 3.0),
               Error);
}

}  // namespace
}  // namespace stackroute

// Resilience layer unit tests: the SolveStatus taxonomy, SolveBudget
// arming/gating, degraded solves returning honest best-so-far results,
// deterministic fault injection through the solver seams, and the
// warm-start guard's cold fallback.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "stackroute/equilibrium/network.h"
#include "stackroute/equilibrium/parallel.h"
#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/obs/counters.h"
#include "stackroute/solver/frank_wolfe.h"
#include "stackroute/solver/status.h"
#include "stackroute/solver/traffic_assignment.h"
#include "stackroute/solver/water_filling.h"
#include "stackroute/util/fault.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

TEST(SolveStatus, SeverityOrderAndStrings) {
  EXPECT_TRUE(solve_ok(SolveStatus::kConverged));
  EXPECT_FALSE(solve_ok(SolveStatus::kIterLimit));
  EXPECT_FALSE(solve_ok(SolveStatus::kNumericFailure));

  // worst_status is max under the severity order.
  EXPECT_EQ(worst_status(SolveStatus::kConverged, SolveStatus::kIterLimit),
            SolveStatus::kIterLimit);
  EXPECT_EQ(worst_status(SolveStatus::kDeadlineExceeded,
                         SolveStatus::kStalled),
            SolveStatus::kDeadlineExceeded);
  EXPECT_EQ(worst_status(SolveStatus::kNumericFailure,
                         SolveStatus::kDeadlineExceeded),
            SolveStatus::kNumericFailure);

  EXPECT_STREQ(to_string(SolveStatus::kConverged), "converged");
  EXPECT_STREQ(to_string(SolveStatus::kIterLimit), "iter_limit");
  EXPECT_STREQ(to_string(SolveStatus::kStalled), "stalled");
  EXPECT_STREQ(to_string(SolveStatus::kDeadlineExceeded), "deadline");
  EXPECT_STREQ(to_string(SolveStatus::kNumericFailure), "numeric");
}

TEST(SolveBudget, DefaultIsInactive) {
  const SolveBudget b;
  EXPECT_FALSE(b.active());
  EXPECT_FALSE(b.limits_iters());
  EXPECT_FALSE(b.has_deadline());
  EXPECT_EQ(b.armed().deadline_ns, 0);
}

TEST(SolveBudget, ArmingIsIdempotent) {
  SolveBudget b;
  b.deadline_ms = 50.0;
  const SolveBudget armed = b.armed();
  EXPECT_GT(armed.deadline_ns, 0);
  // Arming an armed budget must not push the deadline out — that is what
  // lets a pipeline hand one deadline to every sub-solve.
  EXPECT_EQ(armed.armed().deadline_ns, armed.deadline_ns);
}

TEST(BudgetGate, IterationCapAndDeadline) {
  SolveBudget iters;
  iters.max_iters = 3;
  BudgetGate gate(iters);
  EXPECT_FALSE(gate.over_iters(2));
  EXPECT_TRUE(gate.over_iters(3));
  EXPECT_FALSE(gate.expired());  // no deadline set

  SolveBudget past;
  past.deadline_ns = 1;  // epoch + 1ns: long expired
  BudgetGate expired_gate(past);
  EXPECT_TRUE(expired_gate.expired());
  EXPECT_TRUE(expired_gate.expired());  // sticky
}

TEST(FrankWolfe, IterCapDegradesWithHonestGap) {
  // Braess's equilibrium coincides with the all-or-nothing start, so FW
  // finishes it in one iteration; a congested grid city does not.
  Rng rng(11);
  const NetworkInstance inst = grid_city(rng, 4, 4, 3.0);
  FrankWolfeOptions opts;
  opts.rel_gap_tol = 1e-10;
  opts.step_rule = FwStepRule::kHarmonic;
  opts.budget.max_iters = 2;
  const FrankWolfeResult r =
      frank_wolfe(inst, FlowObjective::kBeckmann, {}, opts);
  EXPECT_EQ(r.status, SolveStatus::kIterLimit);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.rel_gap, opts.rel_gap_tol);  // the honest quality bound
  // Best-so-far flow is still feasible and finite.
  double total = 0.0;
  for (double f : r.edge_flow) {
    EXPECT_TRUE(std::isfinite(f));
    total += f;
  }
  EXPECT_GT(total, 0.0);
}

TEST(FrankWolfe, ExpiredDeadlineDegradesImmediately) {
  const NetworkInstance inst = braess_classic();
  FrankWolfeOptions opts;
  opts.budget.deadline_ns = 1;
  const FrankWolfeResult r =
      frank_wolfe(inst, FlowObjective::kBeckmann, {}, opts);
  EXPECT_EQ(r.status, SolveStatus::kDeadlineExceeded);
  EXPECT_FALSE(r.converged);
  for (double f : r.edge_flow) EXPECT_TRUE(std::isfinite(f));
}

TEST(AssignTraffic, IterCapDegradesWithHonestSpread) {
  // A congested grid needs many equalization steps; Braess can
  // legitimately equilibrate in one.
  Rng rng(11);
  const NetworkInstance inst = grid_city(rng, 4, 4, 3.0);
  AssignmentOptions opts;
  opts.tol = 1e-12;
  opts.budget.max_iters = 1;  // one equalization step, nowhere near done
  const AssignmentResult r =
      assign_traffic(inst, FlowObjective::kBeckmann, {}, opts);
  EXPECT_EQ(r.status, SolveStatus::kIterLimit);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.spread, opts.tol);
  double total = 0.0;
  for (double f : r.edge_flow) {
    EXPECT_TRUE(std::isfinite(f));
    total += f;
  }
  EXPECT_GT(total, 0.0);  // demand still routed, just not equilibrated
}

TEST(AssignTraffic, UnbudgetedRunsMatchPreBudgetBehavior) {
  const NetworkInstance inst = braess_classic();
  const AssignmentResult r = assign_traffic(inst, FlowObjective::kBeckmann);
  EXPECT_EQ(r.status, SolveStatus::kConverged);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.spread, AssignmentOptions{}.tol);
}

TEST(WaterFill, EvalCapDegradesWithSupplyGap) {
  const ParallelLinks m = pigou();
  SolverWorkspace ws;
  SolveBudget budget;
  budget.max_iters = 1;  // one S(L) probe: cannot bracket, let alone refine
  const WaterFillingResult r =
      water_fill(m.links, m.demand, LevelKind::kLatency, 1e-13, ws,
                 std::nan(""), budget);
  EXPECT_EQ(r.status, SolveStatus::kIterLimit);
  EXPECT_TRUE(std::isfinite(r.level));
  for (double f : r.flows) EXPECT_TRUE(std::isfinite(f));
  // The reported gap is the honest miss of the best-so-far level.
  EXPECT_TRUE(std::isfinite(r.supply_gap));
}

TEST(FaultPlan, LookupAndArming) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.armed());
  EXPECT_EQ(plan.for_task(0), nullptr);

  plan.nan_latency(2, 5);
  plan.fail_task(4, 2);
  EXPECT_TRUE(plan.armed());
  EXPECT_EQ(plan.for_task(0), nullptr);
  ASSERT_NE(plan.for_task(2), nullptr);
  ASSERT_EQ(plan.for_task(2)->latency.size(), 1u);
  EXPECT_EQ(plan.for_task(2)->latency[0].call, 5u);
  EXPECT_FALSE(plan.for_task(2)->latency[0].inf);
  EXPECT_EQ(plan.for_task(4)->fail_times, 2);
}

TEST(FaultScope, EventsFireAtExactIndicesOnFirstAttemptOnly) {
  fault::TaskFaults tf;
  tf.latency.push_back({1, false});  // event 1 -> NaN
  tf.latency.push_back({3, true});   // event 3 -> +Inf

  {
    fault::FaultScope scope(&tf, /*attempt=*/0);
    ASSERT_TRUE(fault::armed());
    double bad = 0.0;
    EXPECT_FALSE(fault::next_eval_faulted(bad));  // event 0
    EXPECT_TRUE(fault::next_eval_faulted(bad));   // event 1
    EXPECT_TRUE(std::isnan(bad));
    EXPECT_FALSE(fault::next_eval_faulted(bad));  // event 2
    EXPECT_TRUE(fault::next_eval_faulted(bad));   // event 3
    EXPECT_TRUE(std::isinf(bad));
    EXPECT_FALSE(fault::next_eval_faulted(bad));  // past the schedule
  }
  EXPECT_FALSE(fault::armed());  // scope restored

  {
    // Latency faults are transient: a retry attempt sees clean arithmetic.
    fault::FaultScope scope(&tf, /*attempt=*/1);
    double bad = 0.0;
    for (int i = 0; i < 6; ++i) EXPECT_FALSE(fault::next_eval_faulted(bad));
  }
}

TEST(WaterFill, InjectedNanDegradesColdSolveWithoutThrowing) {
  const ParallelLinks m = pigou();
  fault::TaskFaults tf;
  tf.latency.push_back({0, false});  // first supply probe returns NaN
  fault::FaultScope scope(&tf, 0);

  SolverWorkspace ws;
  const WaterFillingResult r = water_fill(
      m.links, m.demand, LevelKind::kLatency, 1e-13, ws, std::nan(""), {});
  EXPECT_EQ(r.status, SolveStatus::kNumericFailure);
  EXPECT_TRUE(std::isfinite(r.level));
  for (double f : r.flows) EXPECT_TRUE(std::isfinite(f));
}

TEST(WaterFill, WarmGuardFallsBackColdAndCountsIt) {
  ParallelLinks m = pigou();
  // At demand 1 the Nash level equals the constant plateau, which the warm
  // path's open-interval check excludes; demand 0.5 puts the level (0.5)
  // strictly inside (lo, cap) so the warm bracket arms.
  m.demand = 0.5;
  SolverWorkspace ws;
  // Converged level of the clean system, to use as a warm hint.
  const WaterFillingResult clean =
      water_fill(m.links, m.demand, LevelKind::kLatency, 1e-13, ws);
  ASSERT_EQ(clean.status, SolveStatus::kConverged);

  fault::TaskFaults tf;
  // Event 0 is the plateau probe; event 1 is the probe at the warm hint —
  // poisoning it must trip the warm guard, not the outer degrade path.
  tf.latency.push_back({1, false});
  obs::SolveCounters sink;
  {
    obs::CountersScope counters(sink);
    fault::FaultScope scope(&tf, 0);
    const WaterFillingResult r =
        water_fill(m.links, m.demand, LevelKind::kLatency, 1e-13, ws,
                   clean.level, {});
    // The warm guard retried cold; the single fault event was already
    // consumed, so the cold solve converges to the clean answer.
    EXPECT_EQ(r.status, SolveStatus::kConverged);
    EXPECT_NEAR(r.level, clean.level, 1e-9);
  }
  EXPECT_EQ(sink.warm_fallbacks, 1u);
}

TEST(SolveNash, InjectedNanDegradesNetworkSolveWithoutThrowing) {
  const NetworkInstance inst = braess_classic();
  fault::TaskFaults tf;
  tf.latency.push_back({0, false});
  fault::FaultScope scope(&tf, 0);

  const NetworkAssignment r = solve_nash(inst);
  EXPECT_EQ(r.status, SolveStatus::kNumericFailure);
  EXPECT_FALSE(r.converged);
  for (double f : r.edge_flow) EXPECT_TRUE(std::isfinite(f));
}

TEST(SolveNash, ParallelLinksStatusPropagates) {
  const ParallelLinks m = pigou();
  SolverWorkspace ws;
  SolveBudget budget;
  budget.max_iters = 1;
  const LinkAssignment a =
      solve_nash(m, 1e-13, ws, std::nan(""), budget);
  EXPECT_EQ(a.status, SolveStatus::kIterLimit);
  EXPECT_TRUE(std::isfinite(a.level));
}

}  // namespace
}  // namespace stackroute

// Frank–Wolfe as an independent cross-check of the path-equilibration
// solver, plus its own convergence diagnostics.
#include "stackroute/solver/frank_wolfe.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stackroute/network/generators.h"
#include "stackroute/solver/traffic_assignment.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

TEST(FrankWolfe, PigouNash) {
  const NetworkInstance inst = to_network(pigou());
  const auto r = frank_wolfe(inst, FlowObjective::kBeckmann);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.edge_flow[0], 1.0, 1e-4);
  EXPECT_NEAR(r.edge_flow[1], 0.0, 1e-4);
}

TEST(FrankWolfe, PigouOptimum) {
  const NetworkInstance inst = to_network(pigou());
  const auto r = frank_wolfe(inst, FlowObjective::kTotalCost);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.edge_flow[0], 0.5, 1e-4);
  EXPECT_NEAR(r.edge_flow[1], 0.5, 1e-4);
}

TEST(FrankWolfe, AgreesWithPathEquilibrationOnFig7) {
  const NetworkInstance inst = fig7_instance(0.05);
  const auto fw = frank_wolfe(inst, FlowObjective::kTotalCost);
  const auto pe = assign_traffic(inst, FlowObjective::kTotalCost);
  EXPECT_TRUE(fw.converged);
  EXPECT_TRUE(pe.converged);
  EXPECT_NEAR(max_abs_diff(fw.edge_flow, pe.edge_flow), 0.0, 5e-3);
}

TEST(FrankWolfe, AgreesWithPathEquilibrationOnRandomGrid) {
  Rng rng(71);
  const NetworkInstance inst = grid_city(rng, 3, 4, 1.5);
  const auto fw = frank_wolfe(inst, FlowObjective::kBeckmann);
  const auto pe = assign_traffic(inst, FlowObjective::kBeckmann);
  EXPECT_TRUE(fw.converged);
  EXPECT_TRUE(pe.converged);
  EXPECT_NEAR(max_abs_diff(fw.edge_flow, pe.edge_flow), 0.0, 2e-2);
}

TEST(FrankWolfe, GapDecreasesWithMoreIterations) {
  Rng rng(72);
  const NetworkInstance inst = grid_city(rng, 4, 4, 3.0);
  FrankWolfeOptions coarse;
  coarse.max_iters = 30;
  coarse.rel_gap_tol = 0.0;
  FrankWolfeOptions fine = coarse;
  fine.max_iters = 3000;
  const auto a = frank_wolfe(inst, FlowObjective::kBeckmann, {}, coarse);
  const auto b = frank_wolfe(inst, FlowObjective::kBeckmann, {}, fine);
  EXPECT_LT(b.rel_gap, a.rel_gap);
  EXPECT_LE(b.objective, a.objective + 1e-12);
}

TEST(FrankWolfe, ExactLineSearchBeatsHarmonicAtEqualBudget) {
  Rng rng(73);
  const NetworkInstance inst = grid_city(rng, 4, 4, 3.0);
  FrankWolfeOptions exact;
  exact.max_iters = 200;
  exact.rel_gap_tol = 0.0;
  FrankWolfeOptions harmonic = exact;
  harmonic.step_rule = FwStepRule::kHarmonic;
  const auto a = frank_wolfe(inst, FlowObjective::kBeckmann, {}, exact);
  const auto b = frank_wolfe(inst, FlowObjective::kBeckmann, {}, harmonic);
  EXPECT_LE(a.objective, b.objective + 1e-12);
}

TEST(FrankWolfe, PreloadMatchesPathEquilibration) {
  NetworkInstance inst = fig7_instance(0.05);
  inst.commodities[0].demand = 0.4;
  const std::vector<double> preload = {0.3, 0.3, 0.0, 0.3, 0.3};
  const auto fw = frank_wolfe(inst, FlowObjective::kBeckmann, preload);
  const auto pe = assign_traffic(inst, FlowObjective::kBeckmann, preload);
  EXPECT_NEAR(max_abs_diff(fw.edge_flow, pe.edge_flow), 0.0, 5e-3);
}

TEST(FrankWolfe, MultiCommodityConverges) {
  Rng rng(74);
  const NetworkInstance inst = grid_city_multicommodity(rng, 4, 4, 3, 0.2, 0.6);
  FrankWolfeOptions opts;
  opts.rel_gap_tol = 1e-5;
  const auto r = frank_wolfe(inst, FlowObjective::kBeckmann, {}, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.rel_gap, 1e-5);
}


TEST(FrankWolfe, WarmStartConvergesToTheSameObjective) {
  Rng rng(11);
  const NetworkInstance base = grid_city(rng, 5, 5, 2.0);
  SolverWorkspace ws;
  FrankWolfeOptions opts;
  opts.rel_gap_tol = 1e-5;
  const FrankWolfeResult prior =
      frank_wolfe(base, FlowObjective::kBeckmann, {}, opts, ws);

  NetworkInstance scaled = base;
  for (auto& c : scaled.commodities) c.demand *= 1.25;
  const FrankWolfeResult warm =
      frank_wolfe(scaled, FlowObjective::kBeckmann, {}, opts, ws,
                  prior.edge_flow, base.total_demand());
  const FrankWolfeResult cold =
      frank_wolfe(scaled, FlowObjective::kBeckmann, {}, opts, ws);
  EXPECT_TRUE(warm.converged);
  EXPECT_NEAR(warm.objective, cold.objective,
              1e-4 * std::fmax(1.0, cold.objective));
  // Warm iterates start next to the solution; it must not cost more
  // iterations than the all-or-nothing bootstrap.
  EXPECT_LE(warm.iterations, cold.iterations);

  // A size-mismatched warm flow quietly falls back to the cold start.
  const FrankWolfeResult fallback = frank_wolfe(
      scaled, FlowObjective::kBeckmann, {}, opts, ws,
      std::vector<double>(3, 1.0), base.total_demand());
  EXPECT_EQ(fallback.iterations, cold.iterations);
  EXPECT_EQ(fallback.objective, cold.objective);
}

}  // namespace
}  // namespace stackroute

// Cross-backend equivalence: the three equilibrium backends (path
// equalization, Frank–Wolfe, bush) minimize the same convex programs, so
// they must agree on the equilibrium cost to their gap tolerances — not
// bitwise — across generator families and seeds. Plus the bush solver's
// own contracts: warm-vs-cold agreement, honest degraded statuses, and
// bitwise thread-count invariance (solver level here; the sweep-table
// level lives in sweep/test_warm_chains-style coverage below).
#include "stackroute/solver/backend.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stackroute/equilibrium/network.h"
#include "stackroute/gen/registry.h"
#include "stackroute/network/generators.h"
#include "stackroute/obs/counters.h"
#include "stackroute/solver/bush.h"
#include "stackroute/sweep/runner.h"
#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/parallel.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

double rel_diff(double a, double b) {
  return std::fabs(a - b) / std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
}

TEST(BackendRegistry, NamesRoundTrip) {
  for (EquilibriumBackend b : equilibrium_backends()) {
    EXPECT_EQ(parse_equilibrium_backend(to_string(b)), b);
  }
  EXPECT_EQ(parse_equilibrium_backend("path-equalization"),
            EquilibriumBackend::kPathEqualization);
  EXPECT_EQ(parse_equilibrium_backend("frank-wolfe"),
            EquilibriumBackend::kFrankWolfe);
  EXPECT_THROW(parse_equilibrium_backend("simplex"), Error);
  EXPECT_THROW(parse_equilibrium_backend(""), Error);
}

TEST(Bush, PigouNashAndOptimum) {
  const NetworkInstance inst = to_network(pigou());
  const BushResult nash = solve_bush(inst, FlowObjective::kBeckmann);
  EXPECT_TRUE(nash.converged);
  EXPECT_EQ(nash.status, SolveStatus::kConverged);
  EXPECT_NEAR(nash.edge_flow[0], 1.0, 1e-8);
  EXPECT_NEAR(nash.edge_flow[1], 0.0, 1e-8);

  const BushResult opt = solve_bush(inst, FlowObjective::kTotalCost);
  EXPECT_TRUE(opt.converged);
  EXPECT_NEAR(opt.edge_flow[0], 0.5, 1e-6);
  EXPECT_NEAR(opt.edge_flow[1], 0.5, 1e-6);
}

TEST(Bush, BraessNashMatchesClosedForm) {
  const NetworkInstance inst = braess_classic();
  const BushResult r = solve_bush(inst, FlowObjective::kBeckmann);
  ASSERT_TRUE(r.converged);
  // All flow takes s→v→w→t at Nash; C(N) = 2.
  EXPECT_NEAR(cost(inst, r.edge_flow), 2.0, 1e-7);
}

TEST(Bush, ReachesTightGapOnMulticommodityGrid) {
  Rng rng(91);
  const NetworkInstance inst = grid_city_multicommodity(rng, 5, 5, 6, 0.5, 2.0);
  BushOptions opts;
  opts.rel_gap_tol = 1e-10;
  const BushResult r = solve_bush(inst, FlowObjective::kBeckmann, {}, opts);
  EXPECT_TRUE(r.converged) << "gap " << r.rel_gap << " status "
                           << to_string(r.status);
  EXPECT_LE(r.rel_gap, 1e-10);
}

// The headline equivalence sweep: three backends, several generator
// families, several seeds; equilibrium *costs* agree to the loosest
// backend's tolerance (FW at 1e-5, like its own suite — the O(1/k) tail
// makes tighter gaps impractical, which is the bush backend's whole
// point).
TEST(BackendEquivalence, NashCostAgreesAcrossFamiliesAndSeeds) {
  struct Family {
    const char* name;
    NetworkInstance (*make)(Rng&);
  };
  const Family families[] = {
      {"grid", [](Rng& rng) { return grid_city(rng, 4, 4, 2.0); }},
      {"grid-multi",
       [](Rng& rng) { return grid_city_multicommodity(rng, 4, 4, 4, 0.5, 1.5); }},
      {"dag", [](Rng& rng) { return random_layered_dag(rng, 3, 3, 0.7, 1.5); }},
  };
  for (const Family& fam : families) {
    for (std::uint64_t seed : {1u, 7u, 23u}) {
      Rng rng(seed);
      const NetworkInstance inst = fam.make(rng);
      SolverWorkspace ws;

      EquilibriumRequest req;
      req.backend = EquilibriumBackend::kPathEqualization;
      const EquilibriumResult pe =
          solve_equilibrium(inst, {}, req, ws, nullptr, nullptr);
      ASSERT_TRUE(pe.converged) << fam.name << " seed " << seed;
      EXPECT_FALSE(pe.commodity_paths.empty());

      req.backend = EquilibriumBackend::kFrankWolfe;
      req.frank_wolfe.rel_gap_tol = 1e-5;
      const EquilibriumResult fw =
          solve_equilibrium(inst, {}, req, ws, nullptr, nullptr);
      ASSERT_TRUE(fw.converged) << fam.name << " seed " << seed;

      req.backend = EquilibriumBackend::kBush;
      const EquilibriumResult bush =
          solve_equilibrium(inst, {}, req, ws, nullptr, nullptr);
      ASSERT_TRUE(bush.converged)
          << fam.name << " seed " << seed << " gap " << bush.rel_gap;

      const double c_pe = cost(inst, pe.edge_flow);
      const double c_fw = cost(inst, fw.edge_flow);
      const double c_bush = cost(inst, bush.edge_flow);
      EXPECT_LE(rel_diff(c_pe, c_bush), 1e-6)
          << fam.name << " seed " << seed << ": pe " << c_pe << " bush "
          << c_bush;
      EXPECT_LE(rel_diff(c_fw, c_bush), 1e-3)
          << fam.name << " seed " << seed << ": fw " << c_fw << " bush "
          << c_bush;
    }
  }
}

TEST(BackendEquivalence, OptimumCostAgreesOnGrid) {
  Rng rng(5);
  const NetworkInstance inst = grid_city(rng, 4, 4, 2.5);
  const auto pe = assign_traffic(inst, FlowObjective::kTotalCost);
  ASSERT_TRUE(pe.converged);
  const BushResult bush = solve_bush(inst, FlowObjective::kTotalCost);
  ASSERT_TRUE(bush.converged);
  EXPECT_LE(rel_diff(cost(inst, pe.edge_flow), cost(inst, bush.edge_flow)),
            1e-6);
}

TEST(Bush, WarmMatchesColdAcrossDemandScale) {
  Rng rng(17);
  const NetworkInstance base = grid_city_multicommodity(rng, 4, 5, 5, 0.5, 2.0);

  SolverWorkspace ws;
  BushWorkspace bw;
  BushWarmState warm;
  obs::SolveCounters sink;
  obs::CountersScope scope(sink);

  const BushResult first = solve_bush(base, FlowObjective::kBeckmann, {}, {},
                                      ws, bw, nullptr, &warm);
  ASSERT_TRUE(first.converged);
  ASSERT_FALSE(warm.empty());

  NetworkInstance scaled = base;
  for (Commodity& com : scaled.commodities) com.demand *= 1.15;

  const std::uint64_t hits_before = sink.warm_hits;
  const BushResult warm_run = solve_bush(scaled, FlowObjective::kBeckmann, {},
                                         {}, ws, bw, &warm, &warm);
  ASSERT_TRUE(warm_run.converged);
  EXPECT_EQ(sink.warm_hits, hits_before + 1) << "warm payload not accepted";

  SolverWorkspace ws_cold;
  BushWorkspace bw_cold;
  const BushResult cold_run = solve_bush(scaled, FlowObjective::kBeckmann, {},
                                         {}, ws_cold, bw_cold, nullptr, nullptr);
  ASSERT_TRUE(cold_run.converged);
  EXPECT_LE(rel_diff(cost(scaled, warm_run.edge_flow),
                     cost(scaled, cold_run.edge_flow)),
            1e-8);
}

TEST(Bush, MismatchedWarmPayloadFallsBackCold) {
  Rng rng(29);
  const NetworkInstance a = grid_city(rng, 4, 4, 2.0);
  Rng rng2(31);
  NetworkInstance b = grid_city(rng2, 4, 4, 2.0);
  b.commodities[0].sink = b.commodities[0].sink - 1;  // different endpoints

  SolverWorkspace ws;
  BushWorkspace bw;
  BushWarmState warm;
  ASSERT_TRUE(
      solve_bush(a, FlowObjective::kBeckmann, {}, {}, ws, bw, nullptr, &warm)
          .converged);

  obs::SolveCounters sink;
  obs::CountersScope scope(sink);
  const BushResult r = solve_bush(b, FlowObjective::kBeckmann, {}, {}, ws, bw,
                                  &warm, nullptr);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(sink.warm_attempts, 1u);
  EXPECT_EQ(sink.warm_hits, 0u);
}

TEST(Bush, EdgeFlowBitwiseInvariantAcrossThreadCounts) {
  Rng rng(43);
  const NetworkInstance inst = grid_city_multicommodity(rng, 5, 5, 8, 0.5, 2.0);
  const int saved = max_threads_setting();

  set_max_threads(1);
  const BushResult serial = solve_bush(inst, FlowObjective::kBeckmann);
  set_max_threads(4);
  const BushResult parallel = solve_bush(inst, FlowObjective::kBeckmann);
  set_max_threads(saved);

  ASSERT_TRUE(serial.converged);
  ASSERT_EQ(serial.edge_flow.size(), parallel.edge_flow.size());
  for (std::size_t e = 0; e < serial.edge_flow.size(); ++e) {
    EXPECT_EQ(serial.edge_flow[e], parallel.edge_flow[e]) << "edge " << e;
  }
  EXPECT_EQ(serial.rel_gap, parallel.rel_gap);
  EXPECT_EQ(serial.iterations, parallel.iterations);
}

TEST(Bush, HonestIterLimitStatus) {
  Rng rng(3);
  const NetworkInstance inst = grid_city(rng, 4, 4, 3.0);
  BushOptions opts;
  opts.max_iters = 1;
  opts.rel_gap_tol = 0.0;
  const BushResult r = solve_bush(inst, FlowObjective::kBeckmann, {}, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status, SolveStatus::kIterLimit);
  EXPECT_GT(r.rel_gap, 0.0);
  EXPECT_TRUE(std::isfinite(r.rel_gap));
}

TEST(Bush, BudgetDeadlineReportsDeadlineExceeded) {
  Rng rng(3);
  const NetworkInstance inst = grid_city(rng, 5, 5, 3.0);
  BushOptions opts;
  opts.rel_gap_tol = 0.0;  // never converges; only the budget can stop it
  opts.budget.deadline_ms = 1e-3;
  const BushResult r = solve_bush(inst, FlowObjective::kBeckmann, {}, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.status, SolveStatus::kDeadlineExceeded);
}

TEST(Bush, CountersReportShiftsAndRebuilds) {
  Rng rng(47);
  const NetworkInstance inst = grid_city_multicommodity(rng, 4, 4, 4, 0.5, 2.0);
  obs::SolveCounters sink;
  {
    obs::CountersScope scope(sink);
    const BushResult r = solve_bush(inst, FlowObjective::kBeckmann);
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.counters.bush_shifts, 0u);
    EXPECT_GT(r.counters.dijkstra_calls, 0u);
  }
  EXPECT_GT(sink.bush_shifts, 0u);
  EXPECT_GT(sink.gap_checks, 0u);
}

TEST(BackendWarmState, SwitchingBackendsDropsPayloads) {
  Rng rng(11);
  const NetworkInstance inst = grid_city(rng, 3, 3, 1.5);
  SolverWorkspace ws;
  EquilibriumWarmState warm;

  EquilibriumRequest req;
  req.backend = EquilibriumBackend::kFrankWolfe;
  ASSERT_TRUE(solve_equilibrium(inst, {}, req, ws, &warm, &warm).converged);
  EXPECT_EQ(warm.backend, EquilibriumBackend::kFrankWolfe);
  EXPECT_FALSE(warm.fw_flow.empty());

  req.backend = EquilibriumBackend::kBush;
  ASSERT_TRUE(solve_equilibrium(inst, {}, req, ws, &warm, &warm).converged);
  EXPECT_EQ(warm.backend, EquilibriumBackend::kBush);
  EXPECT_TRUE(warm.fw_flow.empty()) << "FW payload must not survive a switch";
  EXPECT_FALSE(warm.bush.empty());

  req.backend = EquilibriumBackend::kPathEqualization;
  ASSERT_TRUE(solve_equilibrium(inst, {}, req, ws, &warm, &warm).converged);
  EXPECT_EQ(warm.backend, EquilibriumBackend::kPathEqualization);
  EXPECT_TRUE(warm.bush.empty()) << "bush payload must not survive a switch";
  EXPECT_FALSE(warm.paths.empty());
}

// Sweep-table level: a bush-backed demand sweep exports byte-identical
// tables at 1 and N threads (the same contract the golden pe tables
// hold), every row converged.
TEST(BackendSweep, BushTableBitwiseInvariantAcrossThreadCounts) {
  sweep::ScenarioSpec spec;
  spec.name = "bush-threads";
  spec.grid.add_linspace("demand", 0.5, 2.0, 6);
  spec.factory =
      sweep::generated_instance_source(gen::sized_spec("grid-bpr", 4), 11);
  spec.metrics = {sweep::metric_nash_cost()};
  spec.warm_axis = "demand";
  spec.backend = EquilibriumBackend::kBush;

  const auto run_at = [&](int threads) {
    const int saved = max_threads_setting();
    set_max_threads(threads);
    sweep::SweepResult result = sweep::SweepRunner(sweep::SweepOptions{}).run(spec);
    set_max_threads(saved);
    return result;
  };
  const sweep::SweepResult serial = run_at(1);
  const sweep::SweepResult parallel = run_at(4);
  EXPECT_EQ(serial.num_failed(), 0u);
  EXPECT_EQ(serial.num_degraded(), 0u);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
}

}  // namespace
}  // namespace stackroute

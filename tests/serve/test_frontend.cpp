// FrontEnd behavior (serve/frontend.h): per-client response ordering,
// admission control (block vs typed shed), write-buffer backpressure,
// typed shutdown refusals, and abort/cancel teardown that releases
// engine sessions without poisoning the engine.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stackroute/engine/engine.h"
#include "stackroute/serve/frontend.h"

namespace stackroute::serve {
namespace {

using engine::Engine;

std::string solve_line(std::uint64_t id, double demand,
                       std::uint64_t session = 0) {
  std::ostringstream os;
  os << "{\"op\":\"equilibrium\",\"id\":" << id
     << ",\"generate\":\"grid-bpr\",\"demand\":" << demand;
  if (session != 0) os << ",\"session\":" << session;
  os << "}";
  return os.str();
}

/// Pulls the echoed id out of a response line ({"id":N,...}).
std::uint64_t response_id(const std::string& line) {
  const std::size_t at = line.find("\"id\":");
  EXPECT_NE(at, std::string::npos) << line;
  return std::stoull(line.substr(at + 5));
}

std::vector<std::string> drain_client(FrontEnd& fe, std::uint64_t client) {
  std::vector<std::string> lines;
  std::string line;
  while (fe.next_response(client, &line)) lines.push_back(std::move(line));
  return lines;
}

/// Spins until `pred` holds (the front end works asynchronously; tests
/// that need "the worker has finished item k" wait on its counters).
template <typename Pred>
void wait_for(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "timed out";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(FrontEndTest, SingleClientResponsesStayInSubmissionOrder) {
  Engine eng;
  FrontEndOptions opts;
  opts.workers = 4;  // ordering must hold regardless of worker count
  FrontEnd fe(eng, opts);
  const std::uint64_t c = fe.add_client(Admission::kBlock);
  for (std::uint64_t i = 1; i <= 8; ++i) {
    fe.submit_line(c, solve_line(i, 0.5 + 0.1 * static_cast<double>(i)), i);
  }
  fe.finish_client(c);
  const std::vector<std::string> lines = drain_client(fe, c);
  ASSERT_EQ(lines.size(), 8u);
  for (std::uint64_t i = 1; i <= 8; ++i) {
    EXPECT_EQ(response_id(lines[i - 1]), i);
    EXPECT_NE(lines[i - 1].find("\"ok\":true"), std::string::npos)
        << lines[i - 1];
  }
  fe.remove_client(c);
  EXPECT_EQ(fe.stats().shed, 0u);
}

TEST(FrontEndTest, PremadeErrorsAreOrderedWithSolves) {
  Engine eng;
  FrontEnd fe(eng, FrontEndOptions{});
  const std::uint64_t c = fe.add_client(Admission::kBlock);
  fe.submit_line(c, solve_line(1, 1.0), 1);
  fe.submit_error(c, 2, "request line exceeds 64 bytes");
  fe.submit_line(c, solve_line(3, 1.5), 3);
  fe.finish_client(c);
  const std::vector<std::string> lines = drain_client(fe, c);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(response_id(lines[0]), 1u);
  EXPECT_NE(lines[1].find("line 2: request line exceeds 64 bytes"),
            std::string::npos)
      << lines[1];
  EXPECT_EQ(response_id(lines[2]), 3u);
  fe.remove_client(c);
  EXPECT_EQ(fe.stats().errors, 1u);
}

TEST(FrontEndTest, FullQueuesShedWithTypedOverloadedError) {
  Engine eng;
  FrontEndOptions opts;
  opts.workers = 1;
  opts.max_queue = 64;
  opts.max_client_queue = 2;
  opts.write_buffer_bytes = 1;  // one buffered response stalls scheduling
  FrontEnd fe(eng, opts);
  const std::uint64_t c = fe.add_client(Admission::kShed);

  // Fill the write buffer with one processed response, making the client
  // unschedulable — the deterministic way to back its queue up.
  fe.submit_error(c, 1, "plug");
  wait_for([&] { return fe.stats().errors >= 1; });

  fe.submit_line(c, solve_line(2, 1.0), 2);  // queued
  fe.submit_line(c, solve_line(3, 1.1), 3);  // queued (cap reached)
  fe.submit_line(c, solve_line(4, 1.2), 4);  // shed
  FrontEndStats stats = fe.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.requests, 4u);
  EXPECT_GE(stats.peak_queue, 2u);

  // Draining the buffer resumes scheduling; the queued lines complete.
  // The shed response itself was dropped (the buffer was full — an
  // unread client is not owed error deliveries), so three lines arrive.
  fe.finish_client(c);
  const std::vector<std::string> lines = drain_client(fe, c);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("line 1: plug"), std::string::npos) << lines[0];
  EXPECT_EQ(response_id(lines[1]), 2u);
  EXPECT_EQ(response_id(lines[2]), 3u);
  fe.remove_client(c);
}

TEST(FrontEndTest, ShedResponseIsTypedWhenBufferHasRoom) {
  Engine eng;
  FrontEndOptions opts;
  opts.workers = 1;
  opts.max_queue = 2;  // the global bound is what the probe trips over
  opts.max_client_queue = 16;
  opts.write_buffer_bytes = 1;
  FrontEnd fe(eng, opts);
  // One client plugs its write buffer and fills the global queue; a
  // second client with an empty buffer then sheds — and, having room,
  // receives the typed notice under its own request id.
  const std::uint64_t blocked = fe.add_client(Admission::kShed);
  const std::uint64_t probe = fe.add_client(Admission::kShed);
  fe.submit_error(blocked, 1, "plug");
  wait_for([&] { return fe.stats().errors >= 1; });
  fe.submit_line(blocked, solve_line(2, 1.0), 2);  // queued
  fe.submit_line(blocked, solve_line(3, 1.1), 3);  // queued: global full
  fe.submit_line(probe, solve_line(7, 1.2), 1);    // shed, typed

  std::string line;
  fe.finish_client(probe);
  ASSERT_TRUE(fe.next_response(probe, &line));
  EXPECT_EQ(response_id(line), 7u);
  EXPECT_NE(line.find("\"status\":\"overloaded\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("request shed"), std::string::npos) << line;
  EXPECT_FALSE(fe.next_response(probe, &line));
  fe.remove_client(probe);

  fe.finish_client(blocked);
  const std::vector<std::string> lines = drain_client(fe, blocked);
  ASSERT_EQ(lines.size(), 3u);  // plug + the two queued solves
  EXPECT_EQ(response_id(lines[1]), 2u);
  EXPECT_EQ(response_id(lines[2]), 3u);
  fe.remove_client(blocked);
  EXPECT_EQ(fe.stats().shed, 1u);
}

TEST(FrontEndTest, ShutdownRefusalsAreTypedAndClientsFinish) {
  Engine eng;
  FrontEnd fe(eng, FrontEndOptions{});
  const std::uint64_t c = fe.add_client(Admission::kShed);
  fe.submit_line(c, solve_line(1, 1.0), 1);
  wait_for([&] { return !fe.stats().millis.empty(); });
  fe.begin_shutdown();
  fe.submit_line(c, solve_line(2, 1.0), 2);  // refused, not run
  fe.drain();
  fe.finish_client(c);  // shutdown does not finish clients by itself
  const std::vector<std::string> lines = drain_client(fe, c);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"status\":\"overloaded\""), std::string::npos)
      << lines[1];
  EXPECT_NE(lines[1].find("shutting down"), std::string::npos) << lines[1];
  EXPECT_EQ(response_id(lines[1]), 2u);
  const FrontEndStats stats = fe.stats();
  EXPECT_EQ(stats.refused, 1u);
  EXPECT_EQ(stats.shed, 0u);
  fe.remove_client(c);
}

TEST(FrontEndTest, AbortReleasesSessionsWithoutPoisoningTheEngine) {
  Engine eng;
  FrontEndOptions opts;
  opts.workers = 1;
  FrontEnd fe(eng, opts);

  const std::uint64_t c = fe.add_client(Admission::kShed);
  fe.submit_line(c, solve_line(1, 1.0, /*session=*/5), 1);
  std::string line;
  ASSERT_TRUE(fe.next_response(c, &line));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  EXPECT_EQ(eng.num_sessions(), 1u);

  // Pile on work, then drop the connection mid-stream.
  for (std::uint64_t i = 2; i <= 6; ++i) {
    fe.submit_line(c, solve_line(i, 1.0 + 0.1 * static_cast<double>(i),
                                 /*session=*/5),
                   i);
  }
  fe.abort_client(c);
  EXPECT_FALSE(fe.next_response(c, &line));
  fe.remove_client(c);
  // Sessions are released even if the worker held one in flight at abort
  // time (the close is deferred to the worker, so wait it out).
  wait_for([&] { return eng.num_sessions() == 0; });

  // The engine is not poisoned: a fresh client solves normally, and the
  // session slot namespace is per client (client session 5 is new).
  const std::uint64_t c2 = fe.add_client(Admission::kShed);
  fe.submit_line(c2, solve_line(9, 1.0, /*session=*/5), 1);
  ASSERT_TRUE(fe.next_response(c2, &line));
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  fe.finish_client(c2);
  EXPECT_FALSE(fe.next_response(c2, &line));
  fe.remove_client(c2);  // closes c2's leftover session
  EXPECT_EQ(eng.num_sessions(), 0u);
  fe.drain();
}

TEST(FrontEndTest, RemoveClientClosesLeftoverSessions) {
  Engine eng;
  FrontEnd fe(eng, FrontEndOptions{});
  const std::uint64_t c = fe.add_client(Admission::kBlock);
  fe.submit_line(c, solve_line(1, 1.0, /*session=*/1), 1);
  fe.submit_line(c, solve_line(2, 1.0, /*session=*/2), 2);
  fe.finish_client(c);
  const std::vector<std::string> lines = drain_client(fe, c);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(eng.num_sessions(), 2u);
  fe.remove_client(c);
  EXPECT_EQ(eng.num_sessions(), 0u);
}

TEST(FrontEndTest, BlockingAdmissionNeverSheds) {
  Engine eng;
  FrontEndOptions opts;
  opts.workers = 2;
  opts.max_queue = 2;
  opts.max_client_queue = 2;
  FrontEnd fe(eng, opts);
  const std::uint64_t c = fe.add_client(Admission::kBlock);

  // Reader thread drains while the submitter blocks on queue room.
  std::vector<std::string> lines;
  std::thread reader([&] { lines = drain_client(fe, c); });
  for (std::uint64_t i = 1; i <= 12; ++i) {
    fe.submit_line(c, solve_line(i, 0.5 + 0.05 * static_cast<double>(i)), i);
  }
  fe.finish_client(c);
  reader.join();

  ASSERT_EQ(lines.size(), 12u);
  for (std::uint64_t i = 1; i <= 12; ++i) {
    EXPECT_EQ(response_id(lines[i - 1]), i);
  }
  const FrontEndStats stats = fe.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.requests, 12u);
  fe.remove_client(c);
}

TEST(FrontEndTest, ConcurrentClientsEachGetAllTheirResponses) {
  Engine eng;
  FrontEndOptions opts;
  opts.workers = 3;
  FrontEnd fe(eng, opts);
  constexpr std::size_t kClients = 4;
  constexpr std::uint64_t kLines = 6;

  std::vector<std::thread> threads;
  for (std::size_t k = 0; k < kClients; ++k) {
    threads.emplace_back([&, k] {
      const std::uint64_t c = fe.add_client(Admission::kBlock);
      for (std::uint64_t i = 1; i <= kLines; ++i) {
        const std::uint64_t id = (k + 1) * 100 + i;
        fe.submit_line(c, solve_line(id, 0.5 + 0.1 * static_cast<double>(i)),
                       i);
      }
      fe.finish_client(c);
      const std::vector<std::string> lines = drain_client(fe, c);
      ASSERT_EQ(lines.size(), kLines);
      for (std::uint64_t i = 1; i <= kLines; ++i) {
        EXPECT_EQ(response_id(lines[i - 1]), (k + 1) * 100 + i);
      }
      fe.remove_client(c);
    });
  }
  for (std::thread& th : threads) th.join();
  const FrontEndStats stats = fe.stats();
  EXPECT_EQ(stats.requests, kClients * kLines);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(eng.num_sessions(), 0u);
}

}  // namespace
}  // namespace stackroute::serve

// Scenario sweep engine: grid expansion, determinism across thread
// counts, closed-form checks on the Pigou grid, file-backed sources and
// failure reporting.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "stackroute/io/serialize.h"
#include "stackroute/network/generators.h"
#include "stackroute/sweep/runner.h"
#include "stackroute/sweep/scenarios.h"
#include "stackroute/util/error.h"
#include "stackroute/util/parallel.h"

namespace stackroute::sweep {
namespace {

TEST(ParamGrid, ExpansionCounts) {
  ParamGrid g;
  EXPECT_EQ(g.size(), 1u);  // axis-free grid: one empty point
  EXPECT_EQ(g.at(0).size(), 0u);

  g.add("a", {1, 2, 3}).add("b", {10, 20}).add_range("c", 0, 4);
  EXPECT_EQ(g.num_axes(), 3u);
  EXPECT_EQ(g.size(), 3u * 2u * 5u);
  EXPECT_THROW(g.at(g.size()), Error);
}

TEST(ParamGrid, RowMajorDecoding) {
  ParamGrid g;
  g.add("a", {1, 2}).add("b", {10, 20, 30});
  // First axis slowest: index = a_idx * 3 + b_idx.
  const ParamPoint p = g.at(4);  // a_idx 1, b_idx 1
  EXPECT_DOUBLE_EQ(p.get("a"), 2);
  EXPECT_DOUBLE_EQ(p.get("b"), 20);
  const ParamPoint last = g.at(5);
  EXPECT_DOUBLE_EQ(last.get("a"), 2);
  EXPECT_DOUBLE_EQ(last.get("b"), 30);
}

TEST(ParamGrid, LinspaceAndRange) {
  ParamGrid g;
  g.add_linspace("x", 0.0, 1.0, 5).add_linspace("y", 2.0, 2.0, 1);
  EXPECT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.at(2).get("x"), 0.5);
  EXPECT_DOUBLE_EQ(g.at(0).get("y"), 2.0);

  ParamGrid r;
  r.add_range("n", 2, 8, 3);  // 2, 5, 8
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.at(2).get_int("n"), 8);
}

TEST(ParamGrid, RejectsBadAxes) {
  ParamGrid g;
  g.add("a", {1});
  EXPECT_THROW(g.add("a", {2}), Error);  // duplicate name
  EXPECT_THROW(g.add("b", {}), Error);   // empty values
  EXPECT_THROW(g.add_linspace("c", 0, 1, 0), Error);
  EXPECT_THROW(g.add_range("d", 3, 1), Error);
}

TEST(ParamPoint, Lookup) {
  ParamPoint p({"demand", "degree"}, {1.5, 3.0});
  EXPECT_DOUBLE_EQ(p.get("demand"), 1.5);
  EXPECT_EQ(p.get_int("degree"), 3);
  EXPECT_TRUE(p.has("degree"));
  EXPECT_FALSE(p.has("slope"));
  EXPECT_DOUBLE_EQ(p.get_or("slope", 7.0), 7.0);
  EXPECT_THROW((void)p.get("slope"), Error);
  EXPECT_THROW((void)p.get_int("demand"), Error);  // 1.5 is not integral
}

TEST(ParamPoint, GetIntToleratesLargeLinspaceValues) {
  // Regression: the integrality check used an absolute 1e-9 tolerance, so
  // large integral axis values carrying magnitude-proportional linspace
  // rounding (a size axis near 1e6+) were spuriously rejected. The dirt
  // below (5e-8 absolute, 5e-14 relative) fails the old check and passes
  // the mixed one.
  ParamPoint dirty({"size"}, {1000000.00000005});
  EXPECT_EQ(dirty.get_int("size"), 1000000);

  // A genuinely fractional value still throws at any magnitude — the
  // relative term must never grow loose enough to bless real fractions.
  ParamPoint frac({"size"}, {1000000.25});
  EXPECT_THROW((void)frac.get_int("size"), Error);
  ParamPoint frac_large({"size"}, {600000000.3});
  EXPECT_THROW((void)frac_large.get_int("size"), Error);
  // Near INT_MAX an uncapped relative tolerance would reach ~2e-3 and
  // bless this milli-fraction; the 1e-6 cap must reject it.
  ParamPoint frac_huge({"size"}, {2000000000.001});
  EXPECT_THROW((void)frac_huge.get_int("size"), Error);

  // Whole grids: a large linspace-generated integer axis round-trips.
  ParamGrid g;
  g.add_linspace("size", 1000000.0, 5000000.0, 5);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g.at(i).get_int("size"),
              1000000 + 1000000 * static_cast<int>(i));
  }
}

TEST(ParamPoint, GetIntRejectsIntOverflowInsteadOfUB) {
  // The old static_cast<int> of an out-of-range double was UB; now it is a
  // precondition error. 3e15 is integral to relative tolerance (its
  // linspace dirt sits below 1 ulp of the value) but cannot fit in int.
  ParamPoint huge({"size"}, {3.0e15});
  EXPECT_THROW((void)huge.get_int("size"), Error);
  ParamPoint negative({"size"}, {-3.0e15});
  EXPECT_THROW((void)negative.get_int("size"), Error);
  // INT_MAX itself still converts.
  ParamPoint edge({"size"}, {2147483647.0});
  EXPECT_EQ(edge.get_int("size"), 2147483647);
}

ScenarioSpec randomized_spec() {
  ScenarioSpec spec;
  spec.name = "test-affine";
  spec.grid.add("links", {2, 3}).add("demand", {0.5, 1.0}).add_range(
      "replicate", 0, 4);
  spec.factory = [](const ParamPoint& p, Rng& rng) -> Instance {
    return random_affine_links(rng, p.get_int("links"), p.get("demand"));
  };
  spec.metrics = default_metrics();
  spec.base_seed = 99;
  return spec;
}

TEST(SweepRunner, DeterministicAcrossThreadCounts) {
  const ScenarioSpec spec = randomized_spec();
  set_max_threads(1);
  const SweepResult serial = SweepRunner().run(spec);
  set_max_threads(0);  // library default: all cores when OpenMP is enabled
  const SweepResult threaded = SweepRunner().run(spec);
  set_max_threads(0);

  ASSERT_EQ(serial.num_tasks(), spec.grid.size());
  EXPECT_EQ(serial.num_failed(), 0u);
  // Bitwise-equal metric records, hence byte-identical exports.
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    ASSERT_EQ(serial.records[i].metrics.size(),
              threaded.records[i].metrics.size());
    for (std::size_t k = 0; k < serial.records[i].metrics.size(); ++k) {
      EXPECT_EQ(serial.records[i].metrics[k], threaded.records[i].metrics[k]);
    }
  }
  EXPECT_EQ(serial.to_csv(), threaded.to_csv());
  EXPECT_EQ(serial.to_markdown(), threaded.to_markdown());
  EXPECT_EQ(serial.to_json(), threaded.to_json());
}

TEST(SweepRunner, SeedChangesRandomizedResults) {
  ScenarioSpec spec = randomized_spec();
  const SweepResult a = SweepRunner().run(spec);
  spec.base_seed = 100;
  const SweepResult b = SweepRunner().run(spec);
  EXPECT_NE(a.to_csv(), b.to_csv());
}

TEST(SweepRunner, PigouGridMatchesClosedForms) {
  // Unit-demand slice of the builtin grid: β = 1 − (d+1)^{−1/d} and
  // ρ = (1 − d·(d+1)^{−(d+1)/d})^{−1} (§1 of the paper; the second factor
  // d·(d+1)^{−(d+1)/d} is the optimum's load-dependent cost share).
  ScenarioSpec spec = make_scenario("pigou-grid");
  spec.grid = ParamGrid().add_range("degree", 1, 8).add("demand", {1.0});
  const SweepResult result = SweepRunner().run(spec);
  ASSERT_EQ(result.num_tasks(), 8u);
  ASSERT_EQ(result.num_failed(), 0u);
  ASSERT_EQ(result.metric_columns[0], "beta");
  ASSERT_EQ(result.metric_columns[1], "poa");
  for (const TaskRecord& rec : result.records) {
    const double d = rec.point.get("degree");
    const double beta_closed = 1.0 - std::pow(d + 1.0, -1.0 / d);
    const double rho_closed =
        1.0 / (1.0 - d * std::pow(d + 1.0, -(d + 1.0) / d));
    EXPECT_NEAR(rec.metrics[0], beta_closed, 1e-7) << "degree " << d;
    EXPECT_NEAR(rec.metrics[1], rho_closed, 1e-6) << "degree " << d;
    // C(S+T) = C(O): the strategy induces the optimum exactly (Thm 2.1).
    EXPECT_NEAR(rec.metrics[4], rec.metrics[3], 1e-9);
  }
}

TEST(SweepRunner, BuiltinScenariosAreWellFormed) {
  for (const auto& named : builtin_scenarios()) {
    const ScenarioSpec spec = named.make();
    EXPECT_EQ(spec.name, named.name);
    EXPECT_TRUE(spec.factory);
    EXPECT_FALSE(spec.metrics.empty());
    EXPECT_GE(spec.grid.size(), 1u);
  }
  EXPECT_THROW(make_scenario("no-such-scenario"), Error);
}

TEST(SweepRunner, FileInstanceSourceSweepsDemand) {
  const std::string path = "sweep_test_fig4.links";
  {
    std::ofstream out(path);
    write_instance(out, fig4_instance());
  }
  ScenarioSpec spec;
  spec.name = "file-test";
  spec.grid.add("demand", {0.5, 1.0, 2.0});
  spec.factory = file_instance_source(path);
  spec.metrics = {metric_beta(), metric_nash_cost(), metric_optimum_cost()};
  const SweepResult result = SweepRunner().run(spec);
  ASSERT_EQ(result.num_tasks(), 3u);
  EXPECT_EQ(result.num_failed(), 0u);
  // Fig. 4 at its native demand r = 1: β = 29/120.
  EXPECT_NEAR(result.records[1].metrics[0], 29.0 / 120.0, 1e-7);
  // Costs grow with demand.
  EXPECT_LT(result.records[0].metrics[2], result.records[1].metrics[2]);
  EXPECT_LT(result.records[1].metrics[2], result.records[2].metrics[2]);

  EXPECT_THROW(file_instance_source("does_not_exist.links"), Error);
}

TEST(SweepRunner, OverrideDemandRescalesCommodities) {
  Rng rng(5);
  Instance inst = grid_city_multicommodity(rng, 3, 3, 3, 0.2, 0.6);
  const auto& net = std::get<NetworkInstance>(inst);
  const double before = net.total_demand();
  ASSERT_GT(before, 0.0);
  const double share0 = net.commodities[0].demand / before;
  override_demand(inst, 2.5);
  EXPECT_NEAR(std::get<NetworkInstance>(inst).total_demand(), 2.5, 1e-12);
  // Proportional split preserved.
  EXPECT_NEAR(std::get<NetworkInstance>(inst).commodities[0].demand,
              share0 * 2.5, 1e-12);
}

TEST(SweepRunner, FailedTasksAreReportedNotFatal) {
  ScenarioSpec spec;
  spec.name = "failing";
  spec.grid.add("demand", {1.0, -1.0, 2.0});  // -1 is infeasible
  spec.factory = [](const ParamPoint& p, Rng&) -> Instance {
    ParallelLinks m = pigou();
    m.demand = p.get("demand");
    m.validate();
    return m;
  };
  spec.metrics = {metric_beta()};
  const SweepResult result = SweepRunner().run(spec);
  EXPECT_EQ(result.num_failed(), 1u);
  EXPECT_FALSE(result.records[1].ok);
  EXPECT_FALSE(result.records[1].error.empty());
  EXPECT_TRUE(std::isnan(result.records[1].metrics[0]));
  EXPECT_TRUE(result.records[0].ok);
  EXPECT_NE(result.to_csv().find("error"), std::string::npos);

  EXPECT_THROW(SweepRunner({.digits = 6, .keep_going = false}).run(spec),
               Error);
}

TEST(SweepRunner, NetworkMetricsDispatchToMop) {
  ScenarioSpec spec = make_scenario("braess-eps");
  spec.grid = ParamGrid().add("eps", {0.05});
  const SweepResult result = SweepRunner().run(spec);
  ASSERT_EQ(result.num_failed(), 0u);
  // β_G = 1/2 + 2ε on the Fig. 7 family.
  EXPECT_NEAR(result.records[0].metrics[0], 0.6, 1e-6);
  EXPECT_NEAR(result.records[0].metrics[0], result.records[0].metrics[1],
              1e-6);
}

TEST(TaskEval, CachedRunsComputeOncePerTask) {
  ScenarioSpec spec;
  spec.name = "cached";
  spec.grid.add("x", {1.0, 2.0});
  spec.factory = [](const ParamPoint&, Rng&) -> Instance { return pigou(); };
  // Both metrics share one cached solve; the counter metric reports how
  // many times compute ran for its own task (expected: exactly once).
  spec.metrics = {
      {"beta_cached",
       [](TaskEval& e) {
         return e.cached<double>("shared", [&] { return e.beta(); });
       }},
      {"compute_count",
       [](TaskEval& e) {
         int runs = 0;
         (void)e.cached<double>("shared", [&] {
           ++runs;
           return e.beta();
         });
         return static_cast<double>(runs);
       }}};
  const SweepResult result = SweepRunner().run(spec);
  ASSERT_EQ(result.num_failed(), 0u);
  for (const auto& rec : result.records) {
    EXPECT_DOUBLE_EQ(rec.metrics[0], 0.5);  // Pigou beta from the cache
    EXPECT_DOUBLE_EQ(rec.metrics[1], 0.0);  // already cached by metric 1
  }
}

TEST(SweepRunner, RequiresFactoryAndMetrics) {
  ScenarioSpec spec;
  spec.name = "empty";
  spec.metrics = {metric_beta()};
  EXPECT_THROW((void)SweepRunner().run(spec), Error);  // no factory
  spec.factory = [](const ParamPoint&, Rng&) -> Instance { return pigou(); };
  spec.metrics.clear();
  EXPECT_THROW((void)SweepRunner().run(spec), Error);  // no metrics
}

TEST(SweepRunner, RejectsDuplicateColumnNames) {
  ScenarioSpec spec;
  spec.name = "dup";
  spec.factory = [](const ParamPoint&, Rng&) -> Instance { return pigou(); };
  spec.metrics = {metric_beta(), metric_beta()};  // two "beta" columns
  EXPECT_THROW((void)SweepRunner().run(spec), Error);
  // A metric colliding with a grid axis name is just as ambiguous.
  spec.metrics = {metric_beta()};
  spec.grid.add("beta", {0.5});
  EXPECT_THROW((void)SweepRunner().run(spec), Error);
}

TEST(SweepRunner, RejectsReservedColumnNamesUpFront) {
  ScenarioSpec spec;
  spec.name = "reserved";
  spec.factory = [](const ParamPoint&, Rng&) -> Instance { return pigou(); };
  // "status" and "millis" are appended by table()/timing_table(); catching
  // the clash before the sweep runs avoids wasting the whole grid.
  spec.metrics = {{"status", [](TaskEval&) { return 1.0; }}};
  EXPECT_THROW((void)SweepRunner().run(spec), Error);
  spec.metrics = {{"millis", [](TaskEval&) { return 1.0; }}};
  EXPECT_THROW((void)SweepRunner().run(spec), Error);
}

TEST(SweepRunner, SinglePointSweepPinsInnerThreadsAndRestores) {
  ScenarioSpec spec;
  spec.name = "single";
  spec.factory = [](const ParamPoint&, Rng&) -> Instance { return pigou(); };
  // Observe the thread setting from inside the lone task: with no outer
  // fan-out possible, the runner must serialize the solvers' own parallel
  // reductions to keep the determinism contract.
  spec.metrics = {{"inner_max_threads", [](TaskEval&) {
                     return static_cast<double>(max_threads());
                   }}};
  set_max_threads(0);
  const SweepResult result = SweepRunner().run(spec);
  ASSERT_EQ(result.num_tasks(), 1u);
  EXPECT_DOUBLE_EQ(result.records[0].metrics[0], 1.0);
  EXPECT_EQ(max_threads_setting(), 0);  // restored afterwards
}

TEST(SweepResult, TableShapes) {
  ScenarioSpec spec = make_scenario("pigou-grid");
  spec.grid = ParamGrid().add("degree", {1, 2}).add("demand", {1.0});
  const SweepResult result = SweepRunner().run(spec);
  const Table t = result.table();
  EXPECT_EQ(t.num_rows(), 2u);
  // params + metrics + status; timing_table adds the millis column.
  const std::string csv = result.to_csv();
  EXPECT_EQ(csv.find("millis"), std::string::npos);
  EXPECT_NE(csv.find("degree,demand,beta"), std::string::npos);
  const std::string timed = result.timing_table().to_csv();
  EXPECT_NE(timed.find("millis"), std::string::npos);
}

}  // namespace
}  // namespace stackroute::sweep

// Warm-start solve chains (runner.h): chain decomposition as a pure
// function of the grid, warm-vs-cold metric agreement at table precision
// across every warm-enabled builtin scenario, bitwise thread-count
// determinism of warm tables, cold fallback on mid-chain topology changes
// and task failures, and the workspace instance-revision tag.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "stackroute/equilibrium/network.h"
#include "stackroute/obs/counters.h"
#include "stackroute/gen/generators.h"
#include "stackroute/network/generators.h"
#include "stackroute/sweep/runner.h"
#include "stackroute/sweep/scenarios.h"
#include "stackroute/util/error.h"
#include "stackroute/util/parallel.h"

namespace stackroute::sweep {
namespace {

SweepResult run_with(const ScenarioSpec& spec, bool warm, int threads) {
  const int saved = max_threads_setting();
  set_max_threads(threads);
  SweepOptions opts;
  opts.warm_start = warm;
  SweepResult result = SweepRunner(opts).run(spec);
  set_max_threads(saved);
  return result;
}

// "Equal at table precision": the formatted tables match cell for cell,
// implemented as a numeric comparison so a value sitting on a rounding
// boundary cannot flake the suite.
void expect_table_precision_equal(const SweepResult& a, const SweepResult& b,
                                  const std::string& label) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks()) << label;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    ASSERT_EQ(a.records[i].ok, b.records[i].ok) << label << " task " << i;
    ASSERT_EQ(a.records[i].metrics.size(), b.records[i].metrics.size());
    for (std::size_t k = 0; k < a.records[i].metrics.size(); ++k) {
      const double x = a.records[i].metrics[k];
      const double y = b.records[i].metrics[k];
      if (std::isnan(x) || std::isnan(y)) {
        EXPECT_TRUE(std::isnan(x) && std::isnan(y))
            << label << " task " << i << " metric " << k;
        continue;
      }
      EXPECT_LE(std::fabs(x - y),
                1e-6 * std::fmax(1.0, std::fmax(std::fabs(x), std::fabs(y))))
          << label << " task " << i << " metric " << k << ": " << x << " vs "
          << y;
    }
  }
}

TEST(WarmChains, ChainCountsFollowTheGrid) {
  ScenarioSpec spec;
  spec.name = "chain-shape";
  spec.grid.add("a", {1, 2}).add_linspace("demand", 0.5, 2.0, 5).add("b",
                                                                     {1, 2, 3});
  spec.factory = [](const ParamPoint& p, Rng&) -> Instance {
    ParallelLinks m = pigou();
    m.demand = p.get("demand");
    return m;
  };
  spec.metrics = {metric_beta()};
  spec.warm_axis = "demand";

  const SweepResult warm = run_with(spec, true, 1);
  EXPECT_EQ(warm.chains, 2u * 3u);  // demand axis folded into chains
  EXPECT_EQ(warm.warm_axis, "demand");
  EXPECT_EQ(warm.num_tasks(), 30u);

  const SweepResult cold = run_with(spec, false, 1);
  EXPECT_EQ(cold.chains, 30u);  // singleton chains
  EXPECT_TRUE(cold.warm_axis.empty());

  spec.warm_axis = "no-such-axis";
  const SweepResult missing = run_with(spec, true, 1);
  EXPECT_EQ(missing.chains, 30u);
  EXPECT_TRUE(missing.warm_axis.empty());
}

TEST(WarmChains, BuiltinScenariosDeclareWarmAxes) {
  // The rule (scenarios.cpp): demand axes chain, and the strategy-compare
  // family chains along alpha (same instance at every point, only the
  // Leader's budget moves); axes that parameterize the latency family
  // itself (braess-eps' eps, thm24-hard's slope) never could, so those
  // scenarios declare nothing.
  for (const auto& named : builtin_scenarios()) {
    const ScenarioSpec spec = named.make();
    if (spec.name == "braess-eps" || spec.name == "thm24-hard") {
      EXPECT_TRUE(spec.warm_axis.empty()) << spec.name;
    } else if (spec.name.rfind("strategy-compare-", 0) == 0) {
      EXPECT_EQ(spec.warm_axis, "alpha") << spec.name;
    } else {
      EXPECT_EQ(spec.warm_axis, "demand") << spec.name;
    }
  }
}

// The shared-prototype scenarios must actually warm-start: adjacent
// demand points of one chain serve pointer-identical latency objects.
TEST(WarmChains, PrototypeScenariosChainCompatiblyAlongDemand) {
  for (const char* name : {"pigou-grid", "mm1-two-groups"}) {
    const ScenarioSpec spec = make_scenario(name);
    Rng rng_a(1), rng_b(2);
    ParamPoint a({"degree", "fast_links", "demand"}, {3.0, 3.0, 1.0});
    ParamPoint b({"degree", "fast_links", "demand"}, {3.0, 3.0, 2.0});
    const Instance ia = spec.factory(a, rng_a);
    const Instance ib = spec.factory(b, rng_b);
    EXPECT_TRUE(chain_compatible(ia, ib)) << name;
    // A different non-warm coordinate must not be compatible.
    ParamPoint c({"degree", "fast_links", "demand"}, {4.0, 4.0, 2.0});
    const Instance ic = spec.factory(c, rng_b);
    EXPECT_FALSE(chain_compatible(ia, ic)) << name;
  }
}

// The headline contract, over every warm-enabled builtin scenario: warm
// and cold runs agree at table precision, and the warm table is bitwise
// identical at any thread count.
TEST(WarmChains, WarmAgreesWithColdAndIsThreadCountDeterministic) {
  for (const auto& named : builtin_scenarios()) {
    const ScenarioSpec spec = named.make();
    const SweepResult cold = run_with(spec, false, 1);
    const SweepResult warm1 = run_with(spec, true, 1);
    const SweepResult warmN = run_with(spec, true, 0);
    EXPECT_EQ(warm1.num_failed(), cold.num_failed()) << spec.name;
    expect_table_precision_equal(warm1, cold, spec.name);
    // Bitwise: byte-identical exports across thread counts.
    EXPECT_EQ(warm1.to_csv(), warmN.to_csv()) << spec.name;
  }
}

TEST(WarmChains, GeneratedDemandSweepChainsAndAgrees) {
  ScenarioSpec spec;
  spec.name = "gen-demand";
  spec.grid.add_linspace("demand", 0.5, 2.5, 9);
  spec.factory =
      generated_instance_source(gen::sized_spec("grid-bpr", 4), 11);
  spec.metrics = default_metrics();
  spec.warm_axis = "demand";

  const SweepResult warm = run_with(spec, true, 1);
  EXPECT_EQ(warm.chains, 1u);
  EXPECT_EQ(warm.num_failed(), 0u);
  const SweepResult cold = run_with(spec, false, 1);
  expect_table_precision_equal(warm, cold, spec.name);
  const SweepResult warmN = run_with(spec, true, 0);
  EXPECT_EQ(warm.to_csv(), warmN.to_csv());
}

// A factory that switches topology mid-axis: the chain must detect the
// break (chain_compatible fails on the fresh latency objects), solve cold
// there, and keep producing rows that agree with the cold run.
TEST(WarmChains, TopologyChangeMidChainFallsBackCold) {
  ScenarioSpec spec;
  spec.name = "topology-break";
  spec.grid.add_linspace("demand", 0.5, 2.0, 6);
  spec.factory = [](const ParamPoint& p, Rng&) -> Instance {
    const double d = p.get("demand");
    Rng gen_rng(42);  // fixed: the topology flip is the only variation
    Instance inst = d < 1.2
                        ? Instance(fig7_instance(0.05))
                        : Instance(random_layered_dag(gen_rng, 2, 3, 0.6, d));
    override_demand(inst, d);
    return inst;
  };
  spec.metrics = {metric_beta(), metric_optimum_cost()};
  spec.warm_axis = "demand";

  const SweepResult warm = run_with(spec, true, 1);
  const SweepResult cold = run_with(spec, false, 1);
  EXPECT_EQ(warm.num_failed(), 0u);
  expect_table_precision_equal(warm, cold, spec.name);
}

// A failing task must reset the chain, not poison the points after it.
TEST(WarmChains, TaskFailureResetsTheChain) {
  ScenarioSpec spec;
  spec.name = "mid-chain-failure";
  spec.grid.add("demand", {0.5, 1.0, -1.0, 1.5, 2.0});  // -1 is infeasible
  spec.factory = [](const ParamPoint& p, Rng&) -> Instance {
    ParallelLinks m = pigou();
    m.demand = p.get("demand");
    m.validate();
    return m;
  };
  spec.metrics = {metric_beta()};
  spec.warm_axis = "demand";

  const SweepResult warm = run_with(spec, true, 1);
  EXPECT_EQ(warm.num_failed(), 1u);
  EXPECT_FALSE(warm.records[2].ok);
  const SweepResult cold = run_with(spec, false, 1);
  expect_table_precision_equal(warm, cold, spec.name);
}

// The workspace instance-revision tag: stable while only scalar knobs
// change (the compiled table is reused), bumped when the topology —
// i.e. the latency object set — actually changes.
TEST(WarmChains, RevisionTagForcesRecompileOnTopologyChange) {
  Rng rng(3);
  NetworkInstance a = grid_city(rng, 3, 3, 1.0);
  NetworkInstance b = random_layered_dag(rng, 2, 3, 0.6, 1.0);
  SolverWorkspace ws;

  (void)solve_nash(a, {}, ws);
  const std::uint64_t after_first = ws.instance_revision();
  EXPECT_GT(after_first, 0u);

  // Same instance again: pointer-identical latencies, no recompilation.
  (void)solve_nash(a, {}, ws);
  EXPECT_EQ(ws.instance_revision(), after_first);

  // Only the demand changed: still no recompilation.
  for (auto& c : a.commodities) c.demand *= 1.5;
  (void)solve_nash(a, {}, ws);
  EXPECT_EQ(ws.instance_revision(), after_first);

  // Different network: the tag must move.
  (void)solve_nash(b, {}, ws);
  EXPECT_GT(ws.instance_revision(), after_first);
}

// ---- Warm-start counter accounting (obs integration) ---------------------
// The chain structure is fully known in these specs, so the obs counters
// have exact expected values: every non-anchor task attempts and hits,
// and chain_resets land on exactly the task that broke the chain.

SweepResult run_counted(const ScenarioSpec& spec, bool warm) {
  const int saved = max_threads_setting();
  set_max_threads(1);
  SweepOptions opts;
  opts.warm_start = warm;
  opts.collect_counters = true;
  SweepResult result = SweepRunner(opts).run(spec);
  set_max_threads(saved);
  return result;
}

TEST(WarmChainCounters, CleanChainHitsEveryAttemptAndNeverResets) {
  ScenarioSpec spec;
  spec.name = "counted-clean";
  spec.grid.add_linspace("demand", 0.5, 2.5, 9);
  spec.factory = generated_instance_source(gen::sized_spec("grid-bpr", 4), 11);
  spec.metrics = default_metrics();
  spec.warm_axis = "demand";

  const SweepResult warm = run_counted(spec, true);
  ASSERT_TRUE(warm.counted);
  EXPECT_EQ(warm.chains, 1u);
  const obs::SolveCounters totals = warm.total_counters();
  EXPECT_GT(totals.warm_attempts, 0u);
  EXPECT_EQ(totals.warm_attempts, totals.warm_hits);
  EXPECT_EQ(totals.chain_resets, 0u);
  // The chain's first task is the cold anchor: nothing to attempt yet.
  EXPECT_EQ(warm.records[0].counters.warm_attempts, 0u);
  for (std::size_t i = 1; i < warm.records.size(); ++i) {
    EXPECT_GT(warm.records[i].counters.warm_attempts, 0u) << "task " << i;
  }

  // A cold run does solver work but never offers a warm payload.
  const SweepResult cold = run_counted(spec, false);
  EXPECT_TRUE(cold.total_counters().any());
  EXPECT_EQ(cold.total_counters().warm_attempts, 0u);
  EXPECT_EQ(cold.total_counters().chain_resets, 0u);

  // And with collection off, nothing is counted at all.
  EXPECT_FALSE(run_with(spec, true, 1).total_counters().any());
}

TEST(WarmChainCounters, TopologyBreakResetsExactlyAtTheFlip) {
  // Two shared prototypes so only the genuine topology flip breaks the
  // chain (chain compatibility is latency pointer identity: building
  // instances fresh per call would reset at every task).
  const NetworkInstance proto_a = fig7_instance(0.05);
  Rng gen_rng(42);
  const NetworkInstance proto_b = random_layered_dag(gen_rng, 2, 3, 0.6, 1.0);

  ScenarioSpec spec;
  spec.name = "counted-topology-break";
  spec.grid.add_linspace("demand", 0.5, 2.0, 6);  // 0.5 0.8 1.1 | 1.4 1.7 2.0
  spec.factory = [proto_a, proto_b](const ParamPoint& p, Rng&) -> Instance {
    const double d = p.get("demand");
    Instance inst = d < 1.2 ? Instance(proto_a) : Instance(proto_b);
    override_demand(inst, d);
    return inst;
  };
  spec.metrics = {metric_beta(), metric_optimum_cost()};
  spec.warm_axis = "demand";

  const SweepResult warm = run_counted(spec, true);
  EXPECT_EQ(warm.num_failed(), 0u);
  EXPECT_EQ(warm.total_counters().chain_resets, 1u);
  for (std::size_t i = 0; i < warm.records.size(); ++i) {
    EXPECT_EQ(warm.records[i].counters.chain_resets, i == 3 ? 1u : 0u)
        << "task " << i;
  }
  // The flip task runs cold (its anchor failed the compatibility test);
  // warm-starting resumes immediately after it.
  EXPECT_EQ(warm.records[3].counters.warm_attempts, 0u);
  EXPECT_GT(warm.records[2].counters.warm_attempts, 0u);
  EXPECT_GT(warm.records[4].counters.warm_attempts, 0u);
}

TEST(WarmChainCounters, TaskFailureResetIsCountedOnTheFailingTask) {
  ScenarioSpec spec;
  spec.name = "counted-failure";
  spec.grid.add("demand", {0.5, 1.0, -1.0, 1.5, 2.0});
  const InstanceFactory base =
      generated_instance_source(gen::sized_spec("grid-bpr", 3), 7);
  spec.factory = [base](const ParamPoint& p, Rng& rng) -> Instance {
    if (p.get("demand") < 0.0) throw std::runtime_error("infeasible demand");
    return base(p, rng);
  };
  spec.metrics = default_metrics();
  spec.warm_axis = "demand";

  const SweepResult warm = run_counted(spec, true);
  EXPECT_EQ(warm.num_failed(), 1u);
  EXPECT_FALSE(warm.records[2].ok);
  EXPECT_EQ(warm.total_counters().chain_resets, 1u);
  for (std::size_t i = 0; i < warm.records.size(); ++i) {
    EXPECT_EQ(warm.records[i].counters.chain_resets, i == 2 ? 1u : 0u)
        << "task " << i;
  }
  // The failing task never reached a solver; the task after it restarts
  // the chain cold, and the one after that warms from the new anchor.
  EXPECT_EQ(warm.records[2].counters.warm_attempts, 0u);
  EXPECT_EQ(warm.records[3].counters.warm_attempts, 0u);
  EXPECT_GT(warm.records[1].counters.warm_attempts, 0u);
  EXPECT_GT(warm.records[4].counters.warm_attempts, 0u);
  const obs::SolveCounters totals = warm.total_counters();
  EXPECT_EQ(totals.warm_attempts, totals.warm_hits);
}

}  // namespace
}  // namespace stackroute::sweep

// Strategy metrics and the strategy-compare-* scenarios: α-axis warm
// chains agree with cold runs at table precision and are bitwise
// thread-count deterministic, the LLF (1/α)·C(O) guarantee surfaces in
// the parallel-links tables, alpha_star bisection, and metric
// preconditions (a missing "alpha" axis is a clean failed row).
#include <gtest/gtest.h>

#include <cmath>

#include "stackroute/gen/registry.h"
#include "stackroute/network/generators.h"
#include "stackroute/sweep/runner.h"
#include "stackroute/sweep/scenarios.h"
#include "stackroute/util/error.h"
#include "stackroute/util/parallel.h"

namespace stackroute::sweep {
namespace {

SweepResult run_with(const ScenarioSpec& spec, bool warm, int threads) {
  const int saved = max_threads_setting();
  set_max_threads(threads);
  SweepOptions opts;
  opts.warm_start = warm;
  SweepResult result = SweepRunner(opts).run(spec);
  set_max_threads(saved);
  return result;
}

double column(const SweepResult& r, std::size_t task, const char* name) {
  for (std::size_t k = 0; k < r.metric_columns.size(); ++k) {
    if (r.metric_columns[k] == name) return r.records[task].metrics[k];
  }
  throw Error(std::string("no such metric column: ") + name);
}

const std::vector<std::string> kStrategyScenarios = {
    "strategy-compare-parallel", "strategy-compare-grid",
    "strategy-compare-braess", "strategy-compare-siouxfalls"};

// The chain determinism contract from PR 4, extended to preload chains
// (satellite of ISSUE 5): warm and cold agree at table precision across
// {1, N} threads, and both tables are bitwise identical at any thread
// count.
TEST(StrategySweep, WarmAgreesWithColdAcrossThreadCounts) {
  for (const auto& name : kStrategyScenarios) {
    const ScenarioSpec spec = make_scenario(name);
    const SweepResult cold1 = run_with(spec, false, 1);
    const SweepResult coldN = run_with(spec, false, 0);
    const SweepResult warm1 = run_with(spec, true, 1);
    const SweepResult warmN = run_with(spec, true, 0);
    EXPECT_EQ(cold1.num_failed(), 0u) << name;
    EXPECT_EQ(warm1.num_failed(), 0u) << name;
    EXPECT_EQ(warm1.to_csv(), warmN.to_csv()) << name;
    EXPECT_EQ(cold1.to_csv(), coldN.to_csv()) << name;
    ASSERT_EQ(warm1.num_tasks(), cold1.num_tasks()) << name;
    for (std::size_t i = 0; i < warm1.num_tasks(); ++i) {
      for (std::size_t k = 0; k < warm1.records[i].metrics.size(); ++k) {
        const double w = warm1.records[i].metrics[k];
        const double c = cold1.records[i].metrics[k];
        EXPECT_LE(std::fabs(w - c),
                  1e-6 * std::fmax(1.0, std::fmax(std::fabs(w), std::fabs(c))))
            << name << " task " << i << " metric " << k;
      }
    }
  }
}

TEST(StrategySweep, ParallelTableObeysLlfGuarantee) {
  // [41, Thm 6.4.4] through the sweep layer: on parallel links the llf
  // column satisfies C(S+T)/C(O) <= 1/α at every α > 0 of the grid.
  const ScenarioSpec spec = make_scenario("strategy-compare-parallel");
  const SweepResult r = run_with(spec, true, 1);
  ASSERT_EQ(r.num_failed(), 0u);
  for (std::size_t i = 0; i < r.num_tasks(); ++i) {
    const double alpha = r.records[i].point.get("alpha");
    if (alpha <= 0.0) continue;
    EXPECT_LE(column(r, i, "llf_ratio"), 1.0 / alpha + 1e-6) << "task " << i;
  }
}

TEST(StrategySweep, BraessScenarioShowsTheGeneralNetGap) {
  // On the classic Braess diamond (rungs = 1) no α < 1 SCALE reaches the
  // optimum — β is 1 there — while on Fig. 4 (the parallel scenario) the
  // baselines do close the gap as α → 1.
  const ScenarioSpec spec = make_scenario("strategy-compare-braess");
  const SweepResult r = run_with(spec, true, 1);
  ASSERT_EQ(r.num_failed(), 0u);
  for (std::size_t i = 0; i < r.num_tasks(); ++i) {
    if (r.records[i].point.get_int("rungs") != 1) continue;
    const double alpha = r.records[i].point.get("alpha");
    if (alpha >= 1.0) continue;
    EXPECT_GT(column(r, i, "scale_ratio"), 1.0 + 1e-6)
        << "alpha " << alpha;
  }
}

TEST(StrategySweep, AlphaStarMetricBisectsToTheKnownThreshold) {
  // On Pigou, LLF reaches the optimum exactly at α = 1/2 (the Fig. 2
  // strategy): alpha_star with a small eps must land just below 0.5.
  ScenarioSpec spec;
  spec.name = "pigou-alpha-star";
  spec.grid.add("demand", {1.0});
  spec.factory = [](const ParamPoint&, Rng&) -> Instance { return pigou(); };
  spec.metrics = {metric_alpha_to_optimum(StrategyKind::kLlf, 1e-3),
                  metric_alpha_to_optimum(StrategyKind::kScale, 1e-3)};
  const SweepResult r = run_with(spec, false, 1);
  ASSERT_EQ(r.num_failed(), 0u);
  const double llf_star = column(r, 0, "llf_alpha_star");
  EXPECT_GT(llf_star, 0.40);
  EXPECT_LE(llf_star, 0.50 + 1e-9);
  const double scale_star = column(r, 0, "scale_alpha_star");
  EXPECT_GT(scale_star, 0.0);
  EXPECT_LT(scale_star, 1.0);
}

TEST(StrategySweep, MissingAlphaAxisIsACleanFailedRow) {
  // scale_ratio reads the "alpha" parameter; a grid without it must
  // produce an error row naming the missing parameter, not a crash.
  ScenarioSpec spec;
  spec.name = "no-alpha";
  spec.grid.add("demand", {1.0});
  spec.factory = [](const ParamPoint&, Rng&) -> Instance { return pigou(); };
  spec.metrics = {metric_strategy_ratio(StrategyKind::kScale)};
  const SweepResult r = run_with(spec, false, 1);
  ASSERT_EQ(r.num_tasks(), 1u);
  EXPECT_EQ(r.num_failed(), 1u);
  EXPECT_NE(r.records[0].error.find("alpha"), std::string::npos)
      << r.records[0].error;
}

TEST(StrategySweep, AloofColumnMatchesPoaTimesOne) {
  // aloof_ratio is the PoA by definition; the two columns must agree
  // bitwise (they divide the same cached costs).
  ScenarioSpec spec;
  spec.name = "aloof-vs-poa";
  spec.grid.add("alpha", {0.5});
  Rng seed_rng(7);
  auto proto = std::make_shared<Instance>(grid_city(seed_rng, 3, 3, 2.0));
  spec.factory = [proto](const ParamPoint&, Rng&) -> Instance {
    return *proto;
  };
  spec.metrics = {metric_poa(), metric_strategy_ratio(StrategyKind::kAloof)};
  const SweepResult r = run_with(spec, false, 1);
  ASSERT_EQ(r.num_failed(), 0u);
  EXPECT_EQ(column(r, 0, "poa"), column(r, 0, "aloof_ratio"));
}

}  // namespace
}  // namespace stackroute::sweep

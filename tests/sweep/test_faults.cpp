// Sweep-level resilience: the RetryPolicy cold-retry loop, fault-injected
// failure/degradation/recovery paths, per-task failure reporting, and the
// determinism contracts — fault-injected tables are invariant under the
// thread count, and a no-fault run is bitwise identical to a plan-free run.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "stackroute/network/generators.h"
#include "stackroute/sweep/metrics.h"
#include "stackroute/sweep/runner.h"
#include "stackroute/sweep/scenarios.h"
#include "stackroute/util/error.h"
#include "stackroute/util/fault.h"
#include "stackroute/util/parallel.h"

namespace stackroute::sweep {
namespace {

// A small parallel-links demand sweep: 6 tasks in 2 chains.
ScenarioSpec links_spec() {
  ScenarioSpec spec;
  spec.name = "faults-links";
  spec.grid.add("a", {1, 2}).add_linspace("demand", 0.5, 1.5, 3);
  spec.factory = [](const ParamPoint& p, Rng&) -> Instance {
    ParallelLinks m = pigou();
    m.demand = p.get("demand");
    return m;
  };
  spec.metrics = {metric_nash_cost(), metric_beta()};
  spec.warm_axis = "demand";
  return spec;
}

// A 4-task network sweep (Braess at scaled demand): injected NaN here hits
// the path-equilibration solver, which degrades instead of healing.
ScenarioSpec network_spec() {
  ScenarioSpec spec;
  spec.name = "faults-network";
  spec.grid.add_linspace("demand", 0.8, 1.2, 4);
  spec.factory = [](const ParamPoint& p, Rng&) -> Instance {
    NetworkInstance inst = braess_classic();
    for (Commodity& c : inst.commodities) c.demand = p.get("demand");
    return inst;
  };
  spec.metrics = {metric_nash_cost()};
  spec.warm_axis = "demand";
  return spec;
}

SweepResult run_with(const ScenarioSpec& spec, const SweepOptions& opts,
                     int threads) {
  const int saved = max_threads_setting();
  set_max_threads(threads);
  SweepResult result = SweepRunner(opts).run(spec);
  set_max_threads(saved);
  return result;
}

TEST(SweepFaults, UnarmedPlanIsBitwiseIdenticalToNoPlan) {
  const ScenarioSpec spec = links_spec();
  const SweepResult bare = run_with(spec, {}, 1);

  SweepOptions opts;
  fault::FaultPlan empty_plan;
  opts.faults = &empty_plan;  // armed() == false: must change nothing
  opts.retry.max_retries = 3;
  opts.budget = {};  // inactive
  const SweepResult planned = run_with(spec, opts, 1);

  EXPECT_EQ(bare.to_csv(), planned.to_csv());
  EXPECT_EQ(bare.num_failed(), 0u);
  EXPECT_EQ(planned.num_degraded(), 0u);
}

TEST(SweepFaults, SingleFailureHealedByColdRetry) {
  const ScenarioSpec spec = links_spec();
  const SweepResult clean = run_with(spec, {}, 1);

  fault::FaultPlan plan;
  plan.fail_task(2, 1);  // one injected throw; default policy retries once
  SweepOptions opts;
  opts.faults = &plan;
  const SweepResult healed = run_with(spec, opts, 1);

  EXPECT_EQ(healed.num_failed(), 0u);
  EXPECT_EQ(healed.records[2].retries, 1);
  EXPECT_EQ(healed.records[0].retries, 0);
  // The healed table is byte-identical to the clean one — recovery leaves
  // no trace in the deterministic outputs.
  EXPECT_EQ(healed.to_csv(), clean.to_csv());
}

TEST(SweepFaults, PersistentFailureIsReportedPerTask) {
  fault::FaultPlan plan;
  plan.fail_task(2, 2);  // fails the first attempt AND the cold retry
  SweepOptions opts;
  opts.faults = &plan;
  const SweepResult r = run_with(links_spec(), opts, 1);

  EXPECT_EQ(r.num_failed(), 1u);
  EXPECT_FALSE(r.records[2].ok);
  EXPECT_EQ(r.records[2].retries, 1);
  EXPECT_NE(r.records[2].error.find("injected"), std::string::npos);
  for (double v : r.records[2].metrics) EXPECT_TRUE(std::isnan(v));
  // The failed row prints "error" in the status column.
  EXPECT_NE(r.to_csv().find("error"), std::string::npos);
  // The summary counts it.
  EXPECT_NE(r.summary().find("1 failed"), std::string::npos);
}

TEST(SweepFaults, RetriesCanBeDisabled) {
  fault::FaultPlan plan;
  plan.fail_task(1, 1);
  SweepOptions opts;
  opts.faults = &plan;
  opts.retry.max_retries = 0;
  const SweepResult r = run_with(links_spec(), opts, 1);
  EXPECT_EQ(r.num_failed(), 1u);
  EXPECT_EQ(r.records[1].retries, 0);
}

TEST(SweepFaults, InjectedNanDegradesNetworkTaskHonestly) {
  fault::FaultPlan plan;
  plan.nan_latency(1, 0);
  SweepOptions opts;
  opts.faults = &plan;
  const SweepResult r = run_with(network_spec(), opts, 1);

  EXPECT_EQ(r.num_failed(), 0u);
  EXPECT_EQ(r.num_degraded(), 1u);
  EXPECT_TRUE(r.records[1].ok);
  EXPECT_EQ(r.records[1].status, SolveStatus::kNumericFailure);
  // Degraded rows carry the taxonomy string, not "ok".
  EXPECT_NE(r.to_csv().find("numeric"), std::string::npos);
  EXPECT_NE(r.summary().find("1 degraded"), std::string::npos);
}

TEST(SweepFaults, ThrowingMetricNamesTheColumn) {
  fault::FaultPlan plan;
  plan.throwing_metric(0, 1, 2);  // metric index 1 = "beta", both attempts
  SweepOptions opts;
  opts.faults = &plan;
  const SweepResult r = run_with(links_spec(), opts, 1);
  EXPECT_EQ(r.num_failed(), 1u);
  EXPECT_NE(r.records[0].error.find("beta"), std::string::npos);
}

TEST(SweepFaults, DemandPerturbationIsSeededAndThreadInvariant) {
  const ScenarioSpec spec = links_spec();
  const SweepResult clean = run_with(spec, {}, 1);

  fault::FaultPlan plan;
  plan.set_seed(7);
  plan.perturb_demand(3, 0.2);
  SweepOptions opts;
  opts.faults = &plan;
  const SweepResult t1 = run_with(spec, opts, 1);
  const SweepResult t4 = run_with(spec, opts, 4);

  // The perturbation moved task 3's metrics...
  EXPECT_NE(clean.to_csv(), t1.to_csv());
  EXPECT_EQ(t1.records[3].ok, true);
  // ...identically at any thread count (same seed, same factor).
  EXPECT_EQ(t1.to_csv(), t4.to_csv());
}

TEST(SweepFaults, CompositeFaultTablesAreThreadInvariant) {
  const ScenarioSpec spec = links_spec();
  fault::FaultPlan plan;
  plan.fail_task(0, 2);
  plan.nan_latency(2, 1);
  plan.throwing_metric(4, 0, 1);
  plan.scale_demand(5, 1.25);
  SweepOptions opts;
  opts.faults = &plan;
  opts.budget.max_iters = 100000;  // active but generous

  const SweepResult t1 = run_with(spec, opts, 1);
  const SweepResult t4 = run_with(spec, opts, 4);
  EXPECT_EQ(t1.to_csv(), t4.to_csv());
  EXPECT_EQ(t1.num_failed(), t4.num_failed());
  EXPECT_EQ(t1.num_degraded(), t4.num_degraded());
  for (std::size_t i = 0; i < t1.records.size(); ++i) {
    EXPECT_EQ(t1.records[i].status, t4.records[i].status) << "task " << i;
    EXPECT_EQ(t1.records[i].retries, t4.records[i].retries) << "task " << i;
  }
}

TEST(SweepFaults, TightBudgetDegradesDeterministically) {
  const ScenarioSpec spec = network_spec();
  SweepOptions opts;
  opts.budget.max_iters = 1;  // every assignment stops after one step
  const SweepResult t1 = run_with(spec, opts, 1);
  const SweepResult t4 = run_with(spec, opts, 4);

  EXPECT_EQ(t1.num_failed(), 0u);
  // A task may legitimately converge within the cap (Braess can
  // equilibrate in one step at some demands); at least one must not.
  EXPECT_GE(t1.num_degraded(), 1u);
  for (const TaskRecord& rec : t1.records) {
    EXPECT_TRUE(rec.status == SolveStatus::kConverged ||
                rec.status == SolveStatus::kIterLimit)
        << to_string(rec.status);
    for (double v : rec.metrics) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(t1.to_csv(), t4.to_csv());
  EXPECT_NE(t1.to_csv().find("iter_limit"), std::string::npos);
}

TEST(SweepFaults, KeepGoingOffNamesTheParamPoint) {
  fault::FaultPlan plan;
  plan.fail_task(2, 2);
  SweepOptions opts;
  opts.faults = &plan;
  opts.keep_going = false;
  try {
    (void)run_with(links_spec(), opts, 1);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    // The rethrow names where in the grid the task sat, plus the cause.
    EXPECT_NE(what.find("sweep task failed at {"), std::string::npos) << what;
    EXPECT_NE(what.find("demand"), std::string::npos) << what;
    EXPECT_NE(what.find("injected"), std::string::npos) << what;
  }
}

TEST(SweepFaults, TimingTableReportsRetries) {
  fault::FaultPlan plan;
  plan.fail_task(1, 1);
  SweepOptions opts;
  opts.faults = &plan;
  const SweepResult r = run_with(links_spec(), opts, 1);
  const std::string csv = r.timing_table().to_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_NE(header.find("retries"), std::string::npos) << header;
}

}  // namespace
}  // namespace stackroute::sweep

// locate_data_file resolution order (sweep/scenario.h): working directory
// first, then the STACKROUTE_DATA_DIR environment override, then the
// baked-in source tree — with every candidate named in the miss error.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "stackroute/sweep/scenario.h"
#include "stackroute/util/error.h"

namespace stackroute::sweep {
namespace {

namespace fs = std::filesystem;

/// Scoped STACKROUTE_DATA_DIR value; restores the previous state on exit.
class ScopedDataDir {
 public:
  explicit ScopedDataDir(const std::string& value) {
    const char* old = std::getenv("STACKROUTE_DATA_DIR");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("STACKROUTE_DATA_DIR", value.c_str(), 1);
  }
  ~ScopedDataDir() {
    if (had_old_) {
      ::setenv("STACKROUTE_DATA_DIR", old_.c_str(), 1);
    } else {
      ::unsetenv("STACKROUTE_DATA_DIR");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

class DataDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("stackroute_data_dir_test_" + std::to_string(::getpid()));
    fs::create_directories(root_ / "examples" / "instances");
    std::ofstream(root_ / "examples" / "instances" / "env_only.links")
        << "# placeholder\n";
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  fs::path root_;
};

TEST_F(DataDirTest, EnvOverrideServesFilesTheSourceTreeLacks) {
  ScopedDataDir env(root_.string());
  const std::string found =
      locate_data_file("examples/instances/env_only.links");
  EXPECT_EQ(found, (root_ / "examples" / "instances" / "env_only.links"));
}

TEST_F(DataDirTest, EnvOverrideOutranksSourceTree) {
  // fig4.links exists in the source tree; a copy under the env dir must
  // win (installed builds point the env at their own data root).
  std::ofstream(root_ / "examples" / "instances" / "fig4.links")
      << "# shadowing copy\n";
  ScopedDataDir env(root_.string());
  const std::string found = locate_data_file("examples/instances/fig4.links");
  EXPECT_EQ(found, (root_ / "examples" / "instances" / "fig4.links"));
}

TEST_F(DataDirTest, FallsBackToSourceTreeWhenEnvMisses) {
  ScopedDataDir env(root_.string());
  const std::string found = locate_data_file("examples/instances/fig4.links");
  EXPECT_NE(found.find("examples/instances/fig4.links"), std::string::npos);
  EXPECT_TRUE(std::ifstream(found).good());
  EXPECT_EQ(found.find(root_.string()), std::string::npos);
}

TEST_F(DataDirTest, MissNamesEveryCandidate) {
  ScopedDataDir env(root_.string());
  try {
    locate_data_file("examples/instances/no_such_file.links");
    FAIL() << "expected a miss";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_file"), std::string::npos);
    EXPECT_NE(msg.find(root_.string()), std::string::npos) << msg;
  }
}

TEST_F(DataDirTest, EmptyEnvValueIsIgnored) {
  ScopedDataDir env("");
  const std::string found = locate_data_file("examples/instances/fig4.links");
  EXPECT_TRUE(std::ifstream(found).good());
}

}  // namespace
}  // namespace stackroute::sweep

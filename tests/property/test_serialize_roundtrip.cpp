// Property test: serialization round-trips are exact. Instances drawn
// from every gen/ family are written to text and re-read; topology and
// demands must match exactly and latency parameters bitwise (the writers
// emit 17 significant digits, which round-trips IEEE doubles exactly).
#include <gtest/gtest.h>

#include <cstring>
#include <variant>

#include "stackroute/gen/registry.h"
#include "stackroute/io/serialize.h"
#include "stackroute/util/error.h"

namespace stackroute {
namespace {

/// a == b bit for bit (works for every non-NaN double the writers emit).
bool bit_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_same_latency(const LatencyFunction& a, const LatencyFunction& b,
                         const std::string& context) {
  EXPECT_EQ(a.kind(), b.kind()) << context;
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size()) << context;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(bit_equal(pa[i], pb[i]))
        << context << " param " << i << ": " << pa[i] << " vs " << pb[i];
  }
}

void expect_roundtrip(const ParallelLinks& m, const std::string& context) {
  const ParallelLinks back = parallel_links_from_string(to_string(m));
  ASSERT_EQ(back.size(), m.size()) << context;
  EXPECT_TRUE(bit_equal(back.demand, m.demand)) << context;
  for (std::size_t i = 0; i < m.size(); ++i) {
    expect_same_latency(*m.links[i], *back.links[i],
                        context + " link " + std::to_string(i));
  }
}

void expect_roundtrip(const NetworkInstance& inst,
                      const std::string& context) {
  const NetworkInstance back = network_from_string(to_string(inst));
  ASSERT_EQ(back.graph.num_nodes(), inst.graph.num_nodes()) << context;
  ASSERT_EQ(back.graph.num_edges(), inst.graph.num_edges()) << context;
  for (EdgeId e = 0; e < inst.graph.num_edges(); ++e) {
    const Edge& ea = inst.graph.edge(e);
    const Edge& eb = back.graph.edge(e);
    EXPECT_EQ(ea.tail, eb.tail) << context << " edge " << e;
    EXPECT_EQ(ea.head, eb.head) << context << " edge " << e;
    expect_same_latency(*ea.latency, *eb.latency,
                        context + " edge " + std::to_string(e));
  }
  ASSERT_EQ(back.commodities.size(), inst.commodities.size()) << context;
  for (std::size_t i = 0; i < inst.commodities.size(); ++i) {
    EXPECT_EQ(back.commodities[i].source, inst.commodities[i].source);
    EXPECT_EQ(back.commodities[i].sink, inst.commodities[i].sink);
    EXPECT_TRUE(
        bit_equal(back.commodities[i].demand, inst.commodities[i].demand))
        << context;
  }
}

TEST(SerializeRoundtrip, EveryGeneratorFamilyAtManySeeds) {
  for (const auto& info : gen::generator_registry()) {
    gen::GeneratorSpec spec;
    spec.family = info.name;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const auto context = info.name + " seed " + std::to_string(seed);
      const gen::GeneratedInstance inst = gen::generate(spec, seed);
      if (const auto* m = std::get_if<ParallelLinks>(&inst)) {
        expect_roundtrip(*m, context);
      } else {
        expect_roundtrip(std::get<NetworkInstance>(inst), context);
      }
    }
  }
}

TEST(SerializeRoundtrip, AwkwardDemandsSurvive) {
  // Denormal-adjacent and long-mantissa demands stress the 17-digit path.
  for (double demand :
       {1.0 / 3.0, 0.1, 1e-12, 12345.678901234567, 2.2250738585072014e-308}) {
    gen::GeneratorSpec spec;
    spec.family = "parallel-affine";
    spec.params["demand"] = demand;
    const auto inst = gen::generate(spec, 5);
    expect_roundtrip(std::get<ParallelLinks>(inst),
                     "demand " + std::to_string(demand));
  }
}

}  // namespace
}  // namespace stackroute

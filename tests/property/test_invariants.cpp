// Parameterized property sweeps over randomized instance families: the
// paper's invariants must hold on every draw, across latency families and
// system sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "stackroute/core/mop.h"
#include "stackroute/core/optop.h"
#include "stackroute/core/strategy.h"
#include "stackroute/core/structure.h"
#include "stackroute/equilibrium/parallel.h"
#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

enum class Family { kAffine, kCommonSlope, kPolynomial, kMm1, kBpr, kMixed };

struct SweepCase {
  Family family;
  int links;
  std::uint64_t seed;
  std::string label;
};

ParallelLinks draw(const SweepCase& c, Rng& rng) {
  switch (c.family) {
    case Family::kAffine:
      return random_affine_links(rng, c.links, 2.0);
    case Family::kCommonSlope:
      return random_common_slope_links(rng, c.links, 2.0, 1.2);
    case Family::kPolynomial:
      return random_polynomial_links(rng, c.links, 1.6);
    case Family::kMm1: {
      std::vector<double> mus;
      for (int i = 0; i < c.links; ++i) mus.push_back(rng.uniform(0.8, 4.0));
      return mm1_links(std::move(mus), 2.0);
    }
    case Family::kBpr: {
      ParallelLinks m;
      m.demand = 2.0;
      for (int i = 0; i < c.links; ++i) {
        m.links.push_back(make_bpr(rng.uniform(0.5, 2.0),
                                   rng.uniform(0.5, 2.0), 0.15, 4.0));
      }
      return m;
    }
    case Family::kMixed: {
      // Affine + polynomial + constants: exercises the Remark 2.5 plateau
      // paths inside every solver.
      ParallelLinks m;
      m.demand = 2.0;
      for (int i = 0; i < c.links; ++i) {
        const double coin = rng.uniform01();
        if (coin < 0.25) {
          m.links.push_back(make_constant(rng.uniform(0.3, 2.0)));
        } else if (coin < 0.6) {
          m.links.push_back(
              make_affine(rng.uniform(0.2, 3.0), rng.uniform(0.0, 1.5)));
        } else {
          m.links.push_back(make_polynomial(
              {rng.uniform(0.0, 1.0), rng.uniform(0.1, 1.0),
               rng.uniform(0.0, 1.5)}));
        }
      }
      return m;
    }
  }
  throw Error("unreachable");
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const struct {
    Family family;
    const char* name;
  } families[] = {{Family::kAffine, "affine"},
                  {Family::kCommonSlope, "common_slope"},
                  {Family::kPolynomial, "polynomial"},
                  {Family::kMm1, "mm1"},
                  {Family::kBpr, "bpr"},
                  {Family::kMixed, "mixed"}};
  for (const auto& f : families) {
    for (int links : {2, 4, 8, 16}) {
      for (std::uint64_t seed : {11ull, 29ull}) {
        cases.push_back({f.family, links,
                         seed + static_cast<std::uint64_t>(links) * 1000,
                         std::string(f.name) + "_m" + std::to_string(links) +
                             "_s" + std::to_string(seed)});
      }
    }
  }
  return cases;
}

class ParallelSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ParallelSweep, NashAndOptimumAreWellFormed) {
  Rng rng(GetParam().seed);
  const ParallelLinks m = draw(GetParam(), rng);
  const LinkAssignment n = solve_nash(m);
  const LinkAssignment o = solve_optimum(m);
  EXPECT_NEAR(sum(n.flows), m.demand, 1e-7);
  EXPECT_NEAR(sum(o.flows), m.demand, 1e-7);
  EXPECT_TRUE(satisfies_wardrop(m, n.flows, 1e-6));
  EXPECT_TRUE(satisfies_optimality(m, o.flows, 1e-6));
  EXPECT_LE(cost(m, o.flows), cost(m, n.flows) + 1e-8);
}

TEST_P(ParallelSweep, OpTopInducesTheOptimum) {
  Rng rng(GetParam().seed + 1);
  const ParallelLinks m = draw(GetParam(), rng);
  const OpTopResult r = op_top(m);
  EXPECT_GE(r.beta, -1e-12);
  EXPECT_LE(r.beta, 1.0 + 1e-12);
  const std::vector<double> combined = add(r.strategy, r.induced);
  EXPECT_NEAR(max_abs_diff(combined, r.optimum), 0.0, 2e-5);
  EXPECT_NEAR(r.induced_cost, r.optimum_cost,
              1e-5 * std::fmax(1.0, r.optimum_cost));
}

TEST_P(ParallelSweep, OpTopStrategyFreezesOnlyUnderloadedFlow) {
  Rng rng(GetParam().seed + 2);
  const ParallelLinks m = draw(GetParam(), rng);
  const OpTopResult r = op_top(m);
  double frozen_total = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (r.strategy[i] > 0.0) {
      EXPECT_NEAR(r.strategy[i], r.optimum[i], 1e-9);
      frozen_total += r.strategy[i];
    }
  }
  EXPECT_NEAR(frozen_total, r.beta * m.demand, 1e-7);
}

TEST_P(ParallelSweep, UselessStrategiesLeaveNashAlone) {
  // Theorem 7.2 on every family.
  Rng rng(GetParam().seed + 3);
  const ParallelLinks m = draw(GetParam(), rng);
  const LinkAssignment n = solve_nash(m);
  std::vector<double> s(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    s[i] = rng.uniform(0.0, 1.0) * n.flows[i];
  }
  const LinkAssignment t = solve_induced(m, s);
  EXPECT_NEAR(max_abs_diff(add(s, t.flows), n.flows), 0.0, 2e-6);
}

TEST_P(ParallelSweep, FrozenLinksStayFrozen) {
  // Theorem 7.4 on every family: freeze the two fastest links fully.
  Rng rng(GetParam().seed + 4);
  const ParallelLinks m = draw(GetParam(), rng);
  const LinkAssignment n = solve_nash(m);
  std::vector<double> s(m.size(), 0.0);
  double budget = m.demand;
  int frozen_count = 0;
  for (std::size_t i = 0; i < m.size() && frozen_count < 2; ++i) {
    if (n.flows[i] > 1e-6 && n.flows[i] * 1.02 < budget) {
      s[i] = n.flows[i] * 1.02;
      budget -= s[i];
      ++frozen_count;
    }
  }
  if (frozen_count == 0) GTEST_SKIP() << "no freezable link in this draw";
  const LinkAssignment t = solve_induced(m, s);
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (s[i] > 0.0) {
      EXPECT_NEAR(t.flows[i], 0.0, 1e-6) << "link " << i;
    }
  }
}

TEST_P(ParallelSweep, LlfGuaranteeHolds) {
  Rng rng(GetParam().seed + 5);
  const ParallelLinks m = draw(GetParam(), rng);
  for (double alpha : {0.3, 0.6, 0.9}) {
    const StackelbergOutcome out = evaluate_strategy(m, llf_strategy(m, alpha));
    EXPECT_LE(out.ratio, 1.0 / alpha + 1e-5)
        << GetParam().label << " alpha " << alpha;
  }
}

TEST_P(ParallelSweep, MopAgreesOnTwoNodeNetworks) {
  Rng rng(GetParam().seed + 6);
  const ParallelLinks m = draw(GetParam(), rng);
  if (GetParam().links > 8) GTEST_SKIP() << "network solve kept small";
  const double beta_links = op_top(m).beta;
  MopOptions opts;
  opts.verify_induced = false;
  const double beta_net = mop(to_network(m), opts).beta;
  EXPECT_NEAR(beta_links, beta_net, 2e-4) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Families, ParallelSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.label;
    });

// Network-side sweep.

struct NetCase {
  int rows, cols, commodities;
  std::uint64_t seed;
  std::string label;
};

std::vector<NetCase> net_cases() {
  std::vector<NetCase> cases;
  for (int size : {3, 4}) {
    for (int k : {1, 2, 4}) {
      for (std::uint64_t seed : {5ull, 17ull}) {
        cases.push_back({size, size + 1, k, seed,
                         "g" + std::to_string(size) + "x" +
                             std::to_string(size + 1) + "_k" +
                             std::to_string(k) + "_s" + std::to_string(seed)});
      }
    }
  }
  return cases;
}

class NetworkSweep : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetworkSweep, MopInducesOptimum) {
  const NetCase& c = GetParam();
  Rng rng(c.seed);
  const NetworkInstance inst =
      c.commodities == 1
          ? grid_city(rng, c.rows, c.cols, 1.5)
          : grid_city_multicommodity(rng, c.rows, c.cols, c.commodities, 0.2,
                                     0.7);
  const MopResult r = mop(inst);
  EXPECT_GE(r.beta, -1e-9);
  EXPECT_LE(r.beta, 1.0 + 1e-9);
  EXPECT_LT(r.induced_residual, 2e-3) << c.label;
  EXPECT_NEAR(r.induced_cost, r.optimum_cost,
              2e-3 * std::fmax(1.0, r.optimum_cost))
      << c.label;
}

TEST_P(NetworkSweep, ControlledPlusFreeIsDemand) {
  const NetCase& c = GetParam();
  Rng rng(c.seed + 1);
  const NetworkInstance inst =
      c.commodities == 1
          ? grid_city(rng, c.rows, c.cols, 1.5)
          : grid_city_multicommodity(rng, c.rows, c.cols, c.commodities, 0.2,
                                     0.7);
  MopOptions opts;
  opts.verify_induced = false;
  const MopResult r = mop(inst, opts);
  for (std::size_t i = 0; i < inst.commodities.size(); ++i) {
    EXPECT_NEAR(
        r.commodities[i].free_flow + r.commodities[i].controlled_flow,
        inst.commodities[i].demand, 1e-6)
        << c.label << " commodity " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, NetworkSweep, ::testing::ValuesIn(net_cases()),
    [](const ::testing::TestParamInfo<NetCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace stackroute

// The observability layer (src/obs): counter scoping and solver
// snapshots, warm-start attempt/hit accounting, the convergence ring
// buffer and its JSONL schema, chrome-trace well-formedness (balanced
// B/E even under drops), nearest-rank quantiles, and the headline
// contract that profiling a sweep changes no metric byte.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "stackroute/gen/generators.h"
#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/obs/counters.h"
#include "stackroute/obs/profile.h"
#include "stackroute/obs/trace.h"
#include "stackroute/solver/frank_wolfe.h"
#include "stackroute/solver/traffic_assignment.h"
#include "stackroute/solver/water_filling.h"
#include "stackroute/solver/workspace.h"
#include "stackroute/sweep/metrics.h"
#include "stackroute/sweep/runner.h"
#include "stackroute/sweep/scenarios.h"
#include "stackroute/util/parallel.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::size_t count_occurrences(const std::string& hay, const std::string& pin) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(pin); pos != std::string::npos;
       pos = hay.find(pin, pos + pin.size())) {
    ++n;
  }
  return n;
}

// ---- Counters ------------------------------------------------------------

TEST(Counters, MergeClearAnyAndToString) {
  obs::SolveCounters a;
  EXPECT_FALSE(a.any());
  EXPECT_EQ(a.to_string(), "");

  a.dijkstra_calls = 3;
  a.warm_hits = 1;
  obs::SolveCounters b;
  b.dijkstra_calls = 2;
  b.fw_iterations = 7;
  a.merge(b);
  EXPECT_EQ(a.dijkstra_calls, 5u);
  EXPECT_EQ(a.fw_iterations, 7u);
  EXPECT_EQ(a.warm_hits, 1u);
  EXPECT_TRUE(a.any());
  const std::string s = a.to_string();
  EXPECT_NE(s.find("dijkstra_calls=5"), std::string::npos) << s;
  EXPECT_NE(s.find("fw_iterations=7"), std::string::npos) << s;
  // Zero fields stay out of the one-liner.
  EXPECT_EQ(s.find("water_fill_evals"), std::string::npos) << s;

  a.clear();
  EXPECT_FALSE(a.any());

  // The X-macro field table drives exports: names are distinct, docs
  // non-empty, and get() reaches every member.
  ASSERT_FALSE(obs::SolveCounters::fields().empty());
  for (const auto& f : obs::SolveCounters::fields()) {
    EXPECT_NE(f.name[0], '\0');
    EXPECT_NE(f.doc[0], '\0');
    EXPECT_EQ(a.get(f), 0u);
  }
}

TEST(Counters, ScopeInstallsAndRestores) {
  EXPECT_FALSE(obs::counting());
  obs::count(&obs::SolveCounters::dijkstra_calls);  // no sink: no-op
  {
    obs::SolveCounters outer;
    obs::CountersScope scope(outer);
    EXPECT_TRUE(obs::counting());
    obs::count(&obs::SolveCounters::dijkstra_calls, 2);
    {
      obs::SolveCounters inner;
      obs::CountersScope nested(inner);
      obs::count(&obs::SolveCounters::dijkstra_calls, 5);
      EXPECT_EQ(inner.dijkstra_calls, 5u);
    }
    // The nested scope restored the outer sink.
    obs::count(&obs::SolveCounters::dijkstra_calls);
    EXPECT_EQ(outer.dijkstra_calls, 3u);
  }
  EXPECT_FALSE(obs::counting());
}

TEST(Counters, ScopedDeltaComposesIntoEnclosingSink) {
  // Inactive without a sink — and free.
  {
    obs::ScopedCounterDelta idle;
    EXPECT_FALSE(idle.active());
  }
  obs::SolveCounters sink;
  {
    obs::CountersScope scope(sink);
    obs::ScopedCounterDelta outer;
    ASSERT_TRUE(outer.active());
    obs::count(&obs::SolveCounters::gap_checks, 2);
    {
      obs::ScopedCounterDelta inner;
      obs::count(&obs::SolveCounters::gap_checks, 3);
      EXPECT_EQ(inner.current().gap_checks, 3u);
    }
    // The inner delta merged into the outer delta on destruction.
    EXPECT_EQ(outer.current().gap_checks, 5u);
  }
  EXPECT_EQ(sink.gap_checks, 5u);
}

TEST(Counters, SolverResultsSnapshotTheirOwnWork) {
  Rng rng(5);
  const NetworkInstance inst = grid_city(rng, 4, 4, 2.0);

  // Without a sink the result counters stay all-zero.
  FrankWolfeOptions fw_opts;
  fw_opts.max_iters = 10;
  fw_opts.rel_gap_tol = 0.0;
  EXPECT_FALSE(frank_wolfe(inst, FlowObjective::kBeckmann, {}, fw_opts)
                   .counters.any());

  obs::SolveCounters sink;
  {
    obs::CountersScope scope(sink);
    const FrankWolfeResult fw =
        frank_wolfe(inst, FlowObjective::kBeckmann, {}, fw_opts);
    EXPECT_EQ(fw.counters.fw_iterations,
              static_cast<std::uint64_t>(fw.iterations));
    EXPECT_GT(fw.counters.dijkstra_calls, 0u);
    EXPECT_GT(fw.counters.dijkstra_settled, 0u);
    EXPECT_GT(fw.counters.fw_line_search_evals, 0u);

    const AssignmentResult eq =
        assign_traffic(inst, FlowObjective::kBeckmann, {});
    EXPECT_EQ(eq.counters.equalization_steps,
              static_cast<std::uint64_t>(eq.steps));
    EXPECT_GT(eq.counters.dijkstra_calls, 0u);
  }
  // Both solves' deltas merged into the sink.
  EXPECT_GT(sink.fw_iterations, 0u);
  EXPECT_GT(sink.equalization_steps, 0u);
}

TEST(Counters, MonotoneInTheIterationBudget) {
  Rng rng(5);
  const NetworkInstance inst = grid_city(rng, 4, 4, 2.0);
  auto run = [&](int iters) {
    FrankWolfeOptions opts;
    opts.max_iters = iters;
    opts.rel_gap_tol = 0.0;
    obs::SolveCounters sink;
    obs::CountersScope scope(sink);
    (void)frank_wolfe(inst, FlowObjective::kBeckmann, {}, opts);
    return sink;
  };
  const obs::SolveCounters small = run(5);
  const obs::SolveCounters large = run(20);
  EXPECT_EQ(small.fw_iterations, 5u);
  EXPECT_EQ(large.fw_iterations, 20u);
  for (const auto& f : obs::SolveCounters::fields()) {
    EXPECT_GE(large.get(f), small.get(f)) << f.name;
  }
}

TEST(Counters, WaterFillWarmHintAccounting) {
  const std::vector<LatencyPtr> links = {make_affine(1.0, 1.0),
                                         make_affine(1.0, 2.0)};
  SolverWorkspace ws;
  auto run = [&](double hint) {
    obs::SolveCounters sink;
    obs::CountersScope scope(sink);
    (void)water_fill(links, 3.0, LevelKind::kLatency, 1e-12, ws, hint);
    return sink;
  };
  // NaN = cold: no attempt at all.
  const obs::SolveCounters cold = run(kNaN);
  EXPECT_EQ(cold.warm_attempts, 0u);
  EXPECT_EQ(cold.warm_hits, 0u);
  EXPECT_GT(cold.water_fill_evals, 0u);
  // A usable hint near the true level (3.0) is an attempt and a hit.
  const obs::SolveCounters hit = run(2.9);
  EXPECT_EQ(hit.warm_attempts, 1u);
  EXPECT_EQ(hit.warm_hits, 1u);
  // A finite but out-of-bracket hint is an attempted miss.
  const obs::SolveCounters miss = run(0.5);
  EXPECT_EQ(miss.warm_attempts, 1u);
  EXPECT_EQ(miss.warm_hits, 0u);
}

TEST(Counters, AssignmentWarmPayloadAccounting) {
  Rng rng(5);
  NetworkInstance inst = grid_city(rng, 3, 3, 1.5);
  SolverWorkspace ws;
  obs::SolveCounters sink;
  obs::CountersScope scope(sink);

  // Converged state of a real solve is an attempt and a hit.
  const AssignmentResult first =
      assign_traffic(inst, FlowObjective::kTotalCost, {}, {}, ws);
  AssignmentWarmStart warm;
  warm.commodity_paths = first.commodity_paths;
  for (const auto& c : inst.commodities) warm.demands.push_back(c.demand);
  const AssignmentResult rewarmed =
      assign_traffic(inst, FlowObjective::kTotalCost, {}, {}, ws, warm);
  EXPECT_EQ(rewarmed.counters.warm_attempts, 1u);
  EXPECT_EQ(rewarmed.counters.warm_hits, 1u);

  // A junk payload (wrong commodity count) is an attempted miss that
  // falls back cold — same answer, hit not counted.
  AssignmentWarmStart junk;
  junk.commodity_paths.resize(inst.commodities.size() + 3);
  junk.demands.assign(inst.commodities.size() + 3, 1.0);
  const AssignmentResult missed =
      assign_traffic(inst, FlowObjective::kTotalCost, {}, {}, ws, junk);
  EXPECT_EQ(missed.counters.warm_attempts, 1u);
  EXPECT_EQ(missed.counters.warm_hits, 0u);
  EXPECT_NEAR(missed.objective, rewarmed.objective,
              1e-8 * std::fmax(1.0, std::fabs(rewarmed.objective)));
}

// ---- Convergence trace ---------------------------------------------------

TEST(ConvergenceTrace, RingBufferRetainsTheNewest) {
  obs::ConvergenceTrace trace(4);
  EXPECT_EQ(trace.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    trace.record(i, 0.5, 0.25, 100.0 + i);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
  // Oldest-first iteration over the retained window.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.at(i).iteration, static_cast<std::int32_t>(6 + i));
  }
}

TEST(ConvergenceTrace, JsonlSchemaAndContexts) {
  obs::ConvergenceTrace trace;
  trace.record(1, 0.5, 1.0, 42.0);
  trace.push_context("task 7");
  trace.record(2, 0.25, 0.5, kNaN);

  std::ostringstream os;
  trace.write_jsonl(os);
  const std::string out = os.str();
  // One object per line, fixed key set, non-finite -> null.
  EXPECT_EQ(count_occurrences(out, "\n"), 2u);
  EXPECT_EQ(count_occurrences(out, "{\"ctx\":"), 2u);
  EXPECT_EQ(count_occurrences(out, "\"rel_gap\":"), 2u);
  EXPECT_NE(out.find("{\"ctx\":\"\",\"iter\":1"), std::string::npos) << out;
  EXPECT_NE(out.find("{\"ctx\":\"task 7\",\"iter\":2"), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"objective\":null"), std::string::npos) << out;
}

TEST(ConvergenceTrace, RecordConvergenceNeedsAnInstalledSink) {
  obs::record_convergence(1, 0.5, 1.0, 2.0);  // no sink: no-op, no crash
  obs::ConvergenceTrace trace;
  {
    obs::ConvergenceScope scope(trace);
    ASSERT_EQ(obs::convergence(), &trace);
    obs::record_convergence(1, 0.5, 1.0, 2.0);
  }
  EXPECT_EQ(obs::convergence(), nullptr);
  EXPECT_EQ(trace.total_recorded(), 1u);
}

// ---- Span traces ---------------------------------------------------------

TEST(TraceSession, NestedSpansBalanceAndExport) {
  obs::TraceSession session(0);
  session.set_tid(3);
  session.begin("solve");
  session.begin("dijkstra");
  session.end();
  session.instant("note");
  session.end();
  EXPECT_TRUE(session.balanced());
  EXPECT_EQ(session.events(), 5u);
  EXPECT_EQ(session.dropped(), 0u);

  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(out.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"B\""),
            count_occurrences(out, "\"ph\":\"E\""));
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(count_occurrences(out, "\"tid\":3"), 5u);
  EXPECT_NE(out.find("\"s\":\"t\""), std::string::npos);  // instant scope
}

TEST(TraceSession, OverflowDropsButStaysBalanced) {
  obs::TraceSession session(0, /*max_events=*/3);
  session.begin("a");
  session.begin("b");
  session.begin("c");  // fills the storage
  session.begin("d");  // full: dropped, sentinel keeps the stack honest
  session.end();       // closes the dropped d: swallowed
  session.end();       // closes c (E events always land, keeping balance)
  session.end();       // closes b
  session.end();       // closes a
  session.end();       // stray end: ignored
  EXPECT_TRUE(session.balanced());
  EXPECT_GT(session.dropped(), 0u);

  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"B\""),
            count_occurrences(out, "\"ph\":\"E\""));
}

TEST(TraceSession, MergedExportKeepsPerSessionTids) {
  obs::TraceSession a(0), b(0);
  a.set_tid(0);
  b.set_tid(1);
  a.begin("x");
  a.end();
  b.begin("y");
  b.end();
  const obs::TraceSession* sessions[] = {&a, &b};
  std::ostringstream os;
  obs::TraceSession::write_chrome_trace(sessions, os);
  const std::string out = os.str();
  EXPECT_EQ(count_occurrences(out, "\"tid\":0"), 2u);
  EXPECT_EQ(count_occurrences(out, "\"tid\":1"), 2u);
}

TEST(SolverTracing, SolversEmitSpansAndSamples) {
  Rng rng(5);
  const NetworkInstance inst = grid_city(rng, 4, 4, 2.0);
  obs::TraceSession session;
  obs::ConvergenceTrace convergence;
  {
    obs::TraceScope trace(session);
    obs::ConvergenceScope conv(convergence);
    (void)assign_traffic(inst, FlowObjective::kBeckmann, {});
    FrankWolfeOptions opts;
    opts.max_iters = 5;
    opts.rel_gap_tol = 0.0;
    (void)frank_wolfe(inst, FlowObjective::kBeckmann, {}, opts);
  }
  EXPECT_TRUE(session.balanced());
  EXPECT_GT(session.events(), 0u);
  EXPECT_GT(convergence.total_recorded(), 0u);

  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"assign_traffic\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"frank_wolfe\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"all_or_nothing\""), std::string::npos);
}

// ---- Quantiles -----------------------------------------------------------

TEST(Quantiles, NearestRankDefinition) {
  const obs::QuantileSummary q = obs::QuantileSummary::of({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(q.count, 4u);
  EXPECT_DOUBLE_EQ(q.min, 1.0);
  EXPECT_DOUBLE_EQ(q.max, 4.0);
  EXPECT_DOUBLE_EQ(q.mean, 2.5);
  EXPECT_DOUBLE_EQ(q.p50, 2.0);  // ceil(0.5*4) = 2nd of {1,2,3,4}
  EXPECT_DOUBLE_EQ(q.p90, 4.0);
  EXPECT_DOUBLE_EQ(q.p99, 4.0);
  EXPECT_NE(q.to_string().find("p50 2"), std::string::npos);

  const obs::QuantileSummary empty = obs::QuantileSummary::of({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_NE(empty.to_string().find("n=0"), std::string::npos);

  const obs::QuantileSummary one = obs::QuantileSummary::of({7.0});
  EXPECT_DOUBLE_EQ(one.p50, 7.0);
  EXPECT_DOUBLE_EQ(one.p99, 7.0);
}

// ---- Sweep profiling -----------------------------------------------------

// The headline contract: collecting counters and traces changes no metric
// byte, at one thread or many.
TEST(SweepProfiling, TablesBitwiseIdenticalOnVsOff) {
  using namespace stackroute::sweep;
  ScenarioSpec spec;
  spec.name = "profiled-gen";
  spec.grid.add_linspace("demand", 0.5, 2.0, 6);
  spec.factory = generated_instance_source(gen::sized_spec("grid-bpr", 4), 11);
  spec.metrics = default_metrics();
  spec.warm_axis = "demand";

  auto run = [&](bool profiled, int threads, SweepTrace* trace) {
    const int saved = max_threads_setting();
    set_max_threads(threads);
    SweepOptions opts;
    opts.collect_counters = profiled;
    SweepResult r = SweepRunner(opts).run(spec, trace);
    set_max_threads(saved);
    return r;
  };

  const SweepResult plain = run(false, 1, nullptr);
  SweepTrace trace1, traceN;
  const SweepResult profiled1 = run(true, 1, &trace1);
  const SweepResult profiledN = run(true, 0, &traceN);

  EXPECT_EQ(plain.to_csv(), profiled1.to_csv());
  EXPECT_EQ(plain.to_csv(), profiledN.to_csv());
  EXPECT_EQ(plain.table().to_json(), profiled1.table().to_json());

  // The plain run reports no counters anywhere...
  EXPECT_FALSE(plain.counted);
  EXPECT_FALSE(plain.total_counters().any());
  // ...the profiled run reports them everywhere they belong.
  EXPECT_TRUE(profiled1.counted);
  const obs::SolveCounters totals = profiled1.total_counters();
  EXPECT_GT(totals.dijkstra_calls, 0u);
  EXPECT_GT(totals.warm_hits, 0u);
  EXPECT_NE(profiled1.summary().find("counters:"), std::string::npos);
  const std::string profile = profiled1.profile();
  EXPECT_NE(profile.find("task millis:"), std::string::npos);
  EXPECT_NE(profile.find("p99"), std::string::npos);
  EXPECT_NE(profile.find("hit rate"), std::string::npos);
  // Counter columns ride the diagnostic table only.
  EXPECT_NE(profiled1.timing_table().to_csv().find("dijkstra_calls"),
            std::string::npos);
  EXPECT_EQ(profiled1.table().to_csv().find("dijkstra_calls"),
            std::string::npos);

  // Counters are part of the determinism contract too: same work at any
  // thread count.
  ASSERT_EQ(profiled1.records.size(), profiledN.records.size());
  for (std::size_t i = 0; i < profiled1.records.size(); ++i) {
    for (const auto& f : obs::SolveCounters::fields()) {
      EXPECT_EQ(profiled1.records[i].counters.get(f),
                profiledN.records[i].counters.get(f))
          << "task " << i << " " << f.name;
    }
  }

  // The traced run produced balanced per-chain sessions and samples.
  ASSERT_EQ(trace1.sessions.size(), profiled1.chains);
  ASSERT_EQ(trace1.convergence.size(), profiled1.chains);
  std::size_t events = 0, samples = 0;
  for (const auto& s : trace1.sessions) {
    EXPECT_TRUE(s.balanced());
    events += s.events();
  }
  for (const auto& c : trace1.convergence) samples += c.total_recorded();
  EXPECT_GT(events, 0u);
  EXPECT_GT(samples, 0u);

  std::ostringstream chrome;
  trace1.write_chrome_trace(chrome);
  const std::string doc = chrome.str();
  EXPECT_EQ(count_occurrences(doc, "\"ph\":\"B\""),
            count_occurrences(doc, "\"ph\":\"E\""));
  EXPECT_NE(doc.find("\"name\":\"task 0\""), std::string::npos);

  std::ostringstream jsonl;
  trace1.write_convergence_jsonl(jsonl);
  EXPECT_EQ(count_occurrences(jsonl.str(), "{\"ctx\":"), samples);
}

}  // namespace
}  // namespace stackroute

#include "stackroute/latency/families.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"

namespace stackroute {
namespace {

TEST(ConstantLatency, ValueDerivativeIntegral) {
  ConstantLatency fn(0.7);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 0.7);
  EXPECT_DOUBLE_EQ(fn.value(5.0), 0.7);
  EXPECT_DOUBLE_EQ(fn.derivative(3.0), 0.0);
  EXPECT_DOUBLE_EQ(fn.integral(2.0), 1.4);
  EXPECT_DOUBLE_EQ(fn.marginal(9.0), 0.7);
  EXPECT_TRUE(fn.is_constant());
}

TEST(ConstantLatency, InversesThrow) {
  ConstantLatency fn(1.0);
  EXPECT_THROW(fn.inverse(2.0), Error);
  EXPECT_THROW(fn.inverse_marginal(2.0), Error);
}

TEST(ConstantLatency, NegativeRejected) {
  EXPECT_THROW(ConstantLatency(-0.1), Error);
}

TEST(AffineLatency, PigouFastLink) {
  AffineLatency fn(1.0, 0.0);  // ℓ(x) = x
  EXPECT_DOUBLE_EQ(fn.value(0.5), 0.5);
  EXPECT_DOUBLE_EQ(fn.derivative(0.5), 1.0);
  EXPECT_DOUBLE_EQ(fn.integral(1.0), 0.5);
  EXPECT_DOUBLE_EQ(fn.marginal(0.5), 1.0);  // 2x
  EXPECT_DOUBLE_EQ(fn.inverse(2.0), 2.0);
  EXPECT_DOUBLE_EQ(fn.inverse_marginal(2.0), 1.0);
}

TEST(AffineLatency, Fig4FourthLink) {
  AffineLatency fn(2.5, 1.0 / 6.0);  // 5x/2 + 1/6
  EXPECT_NEAR(fn.value(8.0 / 75.0), 13.0 / 30.0, 1e-15);
  EXPECT_NEAR(fn.marginal(8.0 / 75.0), 0.7, 1e-15);  // optimum level of Fig 4
  EXPECT_NEAR(fn.inverse_marginal(0.7), 8.0 / 75.0, 1e-15);
}

TEST(AffineLatency, InverseClampsBelowIntercept) {
  AffineLatency fn(2.0, 1.0);
  EXPECT_DOUBLE_EQ(fn.inverse(0.5), 0.0);
  EXPECT_DOUBLE_EQ(fn.inverse_marginal(0.5), 0.0);
}

TEST(AffineLatency, ZeroSlopeIsConstant) {
  AffineLatency fn(0.0, 2.0);
  EXPECT_TRUE(fn.is_constant());
  EXPECT_THROW(fn.inverse(3.0), Error);
}

TEST(AffineLatency, NegativeParamsRejected) {
  EXPECT_THROW(AffineLatency(-1.0, 0.0), Error);
  EXPECT_THROW(AffineLatency(1.0, -1.0), Error);
}

TEST(PolynomialLatency, CubicEvaluation) {
  PolynomialLatency fn({1.0, 2.0, 0.0, 4.0});  // 1 + 2x + 4x³
  EXPECT_DOUBLE_EQ(fn.value(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fn.value(1.0), 7.0);
  EXPECT_DOUBLE_EQ(fn.derivative(1.0), 2.0 + 12.0);
  EXPECT_DOUBLE_EQ(fn.integral(1.0), 1.0 + 1.0 + 1.0);
  EXPECT_FALSE(fn.is_constant());
}

TEST(PolynomialLatency, NumericInverseMatchesValue) {
  PolynomialLatency fn({0.5, 0.0, 3.0});  // 0.5 + 3x²
  const double target = fn.value(1.3);
  EXPECT_NEAR(fn.inverse(target), 1.3, 1e-9);
}

TEST(PolynomialLatency, NumericInverseMarginalMatchesMarginal) {
  PolynomialLatency fn({0.5, 0.0, 3.0});
  const double target = fn.marginal(0.8);
  EXPECT_NEAR(fn.inverse_marginal(target), 0.8, 1e-9);
}

TEST(PolynomialLatency, ConstantOnlyDetected) {
  PolynomialLatency fn({2.0});
  EXPECT_TRUE(fn.is_constant());
}

TEST(PolynomialLatency, BadCoefficientsRejected) {
  EXPECT_THROW(PolynomialLatency({}), Error);
  EXPECT_THROW(PolynomialLatency({1.0, -2.0}), Error);
  EXPECT_THROW(PolynomialLatency({0.0, 0.0}), Error);
}

TEST(BprLatency, FreeFlowAtZero) {
  BprLatency fn(2.0, 1.5);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 2.0);
  EXPECT_DOUBLE_EQ(fn.derivative(0.0), 0.0);
}

TEST(BprLatency, CongestionAtCapacity) {
  BprLatency fn(1.0, 1.0, 0.15, 4.0);
  EXPECT_NEAR(fn.value(1.0), 1.15, 1e-15);  // t0(1 + B) at x = cap
}

TEST(BprLatency, ClosedFormInverses) {
  BprLatency fn(1.5, 2.0, 0.2, 3.0);
  const double x = 1.234;
  EXPECT_NEAR(fn.inverse(fn.value(x)), x, 1e-12);
  EXPECT_NEAR(fn.inverse_marginal(fn.marginal(x)), x, 1e-12);
}

TEST(BprLatency, IntegralMatchesQuadrature) {
  BprLatency fn(1.0, 1.0);
  // Trapezoid with fine steps vs closed form.
  double acc = 0.0;
  const int n = 20000;
  const double hi = 2.0, h = hi / n;
  for (int i = 0; i < n; ++i) {
    acc += 0.5 * (fn.value(i * h) + fn.value((i + 1) * h)) * h;
  }
  EXPECT_NEAR(fn.integral(hi), acc, 1e-6);
}

TEST(Mm1Latency, QueueingDelayShape) {
  Mm1Latency fn(2.0);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 0.5);
  EXPECT_DOUBLE_EQ(fn.value(1.0), 1.0);
  EXPECT_NEAR(fn.value(1.9), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(fn.capacity(), 2.0);
}

TEST(Mm1Latency, MarginalIsMuOverSquared) {
  Mm1Latency fn(2.0);
  EXPECT_NEAR(fn.marginal(1.0), 2.0, 1e-12);  // mu/(mu-x)^2 = 2/1
}

TEST(Mm1Latency, ClosedFormInverses) {
  Mm1Latency fn(3.0);
  const double x = 2.2;
  EXPECT_NEAR(fn.inverse(fn.value(x)), x, 1e-12);
  EXPECT_NEAR(fn.inverse_marginal(fn.marginal(x)), x, 1e-12);
}

TEST(Mm1Latency, InverseClampsBelowBase) {
  Mm1Latency fn(4.0);
  EXPECT_DOUBLE_EQ(fn.inverse(0.1), 0.0);  // 1/mu = 0.25 > 0.1
  EXPECT_DOUBLE_EQ(fn.inverse_marginal(0.2), 0.0);
}

TEST(Mm1Latency, BarrierExtensionIsFiniteAndIncreasing) {
  Mm1Latency fn(1.0);
  const double a = fn.value(1.0);     // beyond the break point
  const double b = fn.value(2.0);
  EXPECT_TRUE(std::isfinite(a));
  EXPECT_TRUE(std::isfinite(b));
  EXPECT_GT(b, a);
  EXPECT_GT(fn.integral(2.0), fn.integral(1.0));
}

TEST(Mm1Latency, BadMuRejected) {
  EXPECT_THROW(Mm1Latency(0.0), Error);
  EXPECT_THROW(Mm1Latency(-1.0), Error);
}

TEST(ShiftedLatency, ActsAsPreloadedLink) {
  const LatencyPtr base = make_affine(2.0, 1.0);
  ShiftedLatency fn(base, 0.5);
  EXPECT_DOUBLE_EQ(fn.value(0.0), 2.0);   // ℓ(0.5)
  EXPECT_DOUBLE_EQ(fn.value(1.0), 4.0);   // ℓ(1.5)
  EXPECT_DOUBLE_EQ(fn.integral(0.0), 0.0);
  // ∫₀¹ ℓ(u+0.5) du = ∫_{0.5}^{1.5} ℓ = [x² + x] over the interval = 3.
  EXPECT_DOUBLE_EQ(fn.integral(1.0), 3.0);
}

TEST(ShiftedLatency, MarginalUsesFollowerFlowOnly) {
  // h(x) = ℓ(x+s) + x·ℓ'(x+s), not the shifted marginal.
  const LatencyPtr base = make_affine(1.0, 0.0);
  ShiftedLatency fn(base, 1.0);
  EXPECT_DOUBLE_EQ(fn.marginal(2.0), 3.0 + 2.0);
}

TEST(ShiftedLatency, InverseSubtractsShift) {
  const LatencyPtr base = make_affine(1.0, 0.0);
  ShiftedLatency fn(base, 2.0);
  EXPECT_DOUBLE_EQ(fn.inverse(5.0), 3.0);
  EXPECT_DOUBLE_EQ(fn.inverse(1.0), 0.0);  // clamped: target below ℓ(s)
}

TEST(ShiftedLatency, NestedShiftsCollapse) {
  const LatencyPtr once = make_shifted(make_affine(1.0, 0.0), 1.0);
  const LatencyPtr twice = make_shifted(once, 2.0);
  const auto* sh = dynamic_cast<const ShiftedLatency*>(twice.get());
  ASSERT_NE(sh, nullptr);
  EXPECT_DOUBLE_EQ(sh->shift(), 3.0);
  EXPECT_DOUBLE_EQ(twice->value(0.5), 3.5);
}

TEST(ShiftedLatency, ZeroShiftReturnsBase) {
  const LatencyPtr base = make_affine(1.0, 0.0);
  EXPECT_EQ(make_shifted(base, 0.0).get(), base.get());
}

TEST(ShiftedLatency, ShiftBeyondCapacityRejected) {
  EXPECT_THROW(ShiftedLatency(make_mm1(1.0), 2.0), Error);
}

TEST(ScaledLatency, ScalesEverything) {
  ScaledLatency fn(make_affine(1.0, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(fn.value(1.0), 6.0);
  EXPECT_DOUBLE_EQ(fn.derivative(1.0), 3.0);
  EXPECT_DOUBLE_EQ(fn.integral(2.0), 3.0 * (2.0 + 2.0));
  EXPECT_DOUBLE_EQ(fn.inverse(6.0), 1.0);
}

TEST(Factories, MonomialBuildsExpectedPolynomial) {
  const LatencyPtr fn = make_monomial(2.0, 3);  // 2x³
  EXPECT_DOUBLE_EQ(fn->value(2.0), 16.0);
  EXPECT_DOUBLE_EQ(fn->value(0.0), 0.0);
}

TEST(Factories, MakeLatencyRoundTripsSerializableKinds) {
  const std::vector<LatencyPtr> fns = {
      make_constant(0.7), make_affine(2.5, 1.0 / 6.0),
      make_polynomial({1.0, 0.0, 2.0}), make_bpr(1.0, 2.0, 0.15, 4.0),
      make_mm1(3.0)};
  for (const auto& fn : fns) {
    const LatencyPtr copy = make_latency(fn->kind(), fn->params());
    for (double x : {0.0, 0.3, 1.1, 2.4}) {
      EXPECT_DOUBLE_EQ(copy->value(x), fn->value(x)) << fn->describe();
    }
  }
}

TEST(Factories, ShiftedScaledNotSerializable) {
  EXPECT_THROW(make_latency(LatencyKind::kShifted, {1.0}), Error);
  EXPECT_THROW(make_latency(LatencyKind::kScaled, {1.0}), Error);
}

TEST(Describe, HumanReadableFormulas) {
  EXPECT_EQ(make_affine(1.5, 0.0)->describe(), "1.5x");
  EXPECT_EQ(make_constant(0.7)->describe(), "0.7");
  EXPECT_EQ(make_mm1(2.0)->describe(), "1/(2 - x)");
}

}  // namespace
}  // namespace stackroute

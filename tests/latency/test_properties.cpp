// Property sweeps over the latency families: the "standard latency"
// contract of §4 (non-negative, increasing, x·ℓ(x) convex), consistency of
// analytic derivatives/integrals/inverses, and the validator itself.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "stackroute/latency/families.h"
#include "stackroute/latency/validate.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

struct FamilyCase {
  std::string name;
  LatencyPtr fn;
  double x_max;  // sweep upper bound (inside capacity)
};

std::vector<FamilyCase> family_cases() {
  std::vector<FamilyCase> cases;
  Rng rng(2024);
  cases.push_back({"affine_unit", make_affine(1.0, 0.0), 8.0});
  cases.push_back({"affine_steep", make_affine(7.5, 0.25), 8.0});
  cases.push_back({"constant", make_constant(0.7), 8.0});
  cases.push_back({"poly_quadratic", make_polynomial({0.5, 0.0, 2.0}), 5.0});
  cases.push_back({"poly_cubic", make_polynomial({0.1, 1.0, 0.0, 0.5}), 4.0});
  cases.push_back({"monomial_d4", make_monomial(1.0, 4), 3.0});
  cases.push_back({"bpr_default", make_bpr(1.0, 1.0), 3.0});
  cases.push_back({"bpr_steep", make_bpr(2.0, 0.5, 0.3, 6.0), 1.5});
  cases.push_back({"mm1_mu2", make_mm1(2.0), 1.8});
  cases.push_back({"mm1_mu10", make_mm1(10.0), 9.0});
  cases.push_back(
      {"shifted_affine", make_shifted(make_affine(2.0, 0.5), 1.25), 6.0});
  cases.push_back({"shifted_mm1", make_shifted(make_mm1(4.0), 1.0), 2.5});
  cases.push_back({"scaled_poly",
                   make_scaled(make_polynomial({0.2, 0.3, 0.4}), 2.5), 4.0});
  for (int i = 0; i < 8; ++i) {
    cases.push_back({"random_affine_" + std::to_string(i),
                     make_affine(rng.uniform(0.1, 5.0), rng.uniform(0.0, 3.0)),
                     6.0});
  }
  return cases;
}

class LatencyContract : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(LatencyContract, SatisfiesStandardLatencyContract) {
  const auto& c = GetParam();
  const LatencyValidationReport report = validate_latency(*c.fn, c.x_max);
  EXPECT_TRUE(report.ok) << c.name << ": " << report.violation;
}

TEST_P(LatencyContract, DerivativeMatchesFiniteDifference) {
  const auto& c = GetParam();
  const double h = 1e-6 * std::fmax(1.0, c.x_max);
  for (int i = 1; i <= 16; ++i) {
    const double x = c.x_max * i / 17.0;
    const double fd = (c.fn->value(x + h) - c.fn->value(x - h)) / (2.0 * h);
    const double an = c.fn->derivative(x);
    EXPECT_NEAR(an, fd, 1e-4 * std::fmax(1.0, std::fabs(an)))
        << c.name << " at x=" << x;
  }
}

TEST_P(LatencyContract, IntegralDerivativeIsValue) {
  const auto& c = GetParam();
  const double h = 1e-6 * std::fmax(1.0, c.x_max);
  for (int i = 1; i <= 16; ++i) {
    const double x = c.x_max * i / 17.0;
    const double fd = (c.fn->integral(x + h) - c.fn->integral(x - h)) / (2.0 * h);
    EXPECT_NEAR(fd, c.fn->value(x), 1e-4 * std::fmax(1.0, c.fn->value(x)))
        << c.name << " at x=" << x;
  }
}

TEST_P(LatencyContract, InverseIsLeftInverseOfValue) {
  const auto& c = GetParam();
  if (c.fn->is_constant()) return;
  for (int i = 1; i <= 16; ++i) {
    const double x = c.x_max * i / 17.0;
    EXPECT_NEAR(c.fn->inverse(c.fn->value(x)), x,
                1e-6 * std::fmax(1.0, x))
        << c.name << " at x=" << x;
  }
}

TEST_P(LatencyContract, InverseMarginalIsLeftInverseOfMarginal) {
  const auto& c = GetParam();
  if (c.fn->is_constant()) return;
  for (int i = 1; i <= 16; ++i) {
    const double x = c.x_max * i / 17.0;
    EXPECT_NEAR(c.fn->inverse_marginal(c.fn->marginal(x)), x,
                1e-6 * std::fmax(1.0, x))
        << c.name << " at x=" << x;
  }
}

TEST_P(LatencyContract, InverseClampsAtZeroBelowBaseValue) {
  const auto& c = GetParam();
  if (c.fn->is_constant()) return;
  const double base = c.fn->value(0.0);
  EXPECT_DOUBLE_EQ(c.fn->inverse(base * 0.5), 0.0) << c.name;
  EXPECT_DOUBLE_EQ(c.fn->inverse(base), 0.0) << c.name;
}

TEST_P(LatencyContract, MarginalDominatesValue) {
  // h(x) = ℓ(x) + xℓ'(x) >= ℓ(x) for increasing ℓ and x >= 0.
  const auto& c = GetParam();
  for (int i = 0; i <= 16; ++i) {
    const double x = c.x_max * i / 17.0;
    EXPECT_GE(c.fn->marginal(x) + 1e-12, c.fn->value(x))
        << c.name << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, LatencyContract, ::testing::ValuesIn(family_cases()),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return info.param.name;
    });

// The validator must also *reject* broken functions.

class DecreasingLatency final : public LatencyFunction {
 public:
  double value(double x) const override { return 10.0 - x; }
  double derivative(double) const override { return -1.0; }
  double integral(double x) const override { return 10.0 * x - 0.5 * x * x; }
  LatencyKind kind() const override { return LatencyKind::kAffine; }
  std::vector<double> params() const override { return {}; }
  std::string describe() const override { return "10 - x"; }
};

class LyingIntegralLatency final : public LatencyFunction {
 public:
  double value(double x) const override { return x; }
  double derivative(double) const override { return 1.0; }
  double integral(double x) const override { return x; }  // wrong: should be x²/2
  LatencyKind kind() const override { return LatencyKind::kAffine; }
  std::vector<double> params() const override { return {}; }
  std::string describe() const override { return "lying integral"; }
};

TEST(ValidateLatency, RejectsDecreasingFunction) {
  const auto report = validate_latency(DecreasingLatency{}, 5.0);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.violation.find("decreasing"), std::string::npos);
}

TEST(ValidateLatency, RejectsInconsistentIntegral) {
  const auto report = validate_latency(LyingIntegralLatency{}, 5.0);
  EXPECT_FALSE(report.ok);
}

TEST(ValidateLatency, AcceptsAllBuiltInFamilies) {
  for (const auto& c : family_cases()) {
    EXPECT_TRUE(validate_latency(*c.fn, c.x_max).ok) << c.name;
  }
}

}  // namespace
}  // namespace stackroute

// LatencyTable vs the virtual LatencyFunction interface: the compiled
// kernels must agree with the objects they were compiled from — bitwise for
// value/derivative/integral/marginal (the solver hot paths lean on this for
// the sweep determinism contract) and to tight tolerance for the inverses.
// Covers every LatencyKind, nested shifted/scaled/offset wrappers, and the
// opaque fallback for unknown subclasses.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "stackroute/latency/families.h"
#include "stackroute/latency/table.h"
#include "stackroute/util/error.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

struct TableCase {
  std::string name;
  LatencyPtr fn;
  double x_max;  // sample loads in [0, x_max], inside capacity
};

std::vector<TableCase> table_cases() {
  Rng rng(77);
  std::vector<TableCase> cases;
  cases.push_back({"constant", make_constant(0.7), 8.0});
  cases.push_back({"constant_zero", make_constant(0.0), 8.0});
  cases.push_back({"affine", make_affine(2.5, 1.0 / 6.0), 8.0});
  cases.push_back({"affine_zero_slope", make_affine(0.0, 1.5), 8.0});
  cases.push_back({"linear", make_linear(3.0), 8.0});
  cases.push_back({"poly_quadratic", make_polynomial({0.5, 0.0, 2.0}), 5.0});
  cases.push_back({"poly_cubic", make_polynomial({0.1, 1.0, 0.0, 0.5}), 4.0});
  cases.push_back({"monomial_d7", make_monomial(0.3, 7), 2.5});
  cases.push_back({"bpr_default", make_bpr(1.0, 1.0), 3.0});
  cases.push_back({"bpr_steep", make_bpr(2.0, 0.5, 0.3, 6.0), 1.5});
  cases.push_back({"mm1", make_mm1(2.0), 1.8});
  cases.push_back({"mm1_past_break", make_mm1(1.0), 3.0});  // barrier region
  // Single wrappers around every wrappable family.
  cases.push_back({"shifted_affine", make_shifted(make_affine(2.0, 0.5), 1.25), 6.0});
  cases.push_back({"shifted_poly", make_shifted(make_polynomial({0.2, 0.1, 0.7}), 0.4), 4.0});
  cases.push_back({"shifted_bpr", make_shifted(make_bpr(1.5, 2.0), 0.8), 3.0});
  cases.push_back({"shifted_mm1", make_shifted(make_mm1(4.0), 1.0), 2.5});
  cases.push_back({"scaled_poly", make_scaled(make_polynomial({0.2, 0.3, 0.4}), 2.5), 4.0});
  cases.push_back({"scaled_mm1", make_scaled(make_mm1(3.0), 0.25), 2.5});
  cases.push_back({"offset_affine", make_offset(make_affine(1.2, 0.3), 0.9), 6.0});
  cases.push_back({"offset_constant", make_offset(make_constant(0.5), 0.25), 6.0});
  // Nested wrappers (both orders of scale/offset, shift inside and outside).
  cases.push_back({"scaled_offset_affine",
                   make_scaled(make_offset(make_affine(1.0, 0.2), 0.4), 1.5), 5.0});
  cases.push_back({"offset_scaled_poly",
                   make_offset(make_scaled(make_polynomial({0.3, 0.6}), 2.0), 0.7), 5.0});
  cases.push_back({"shifted_scaled_bpr",
                   make_shifted(make_scaled(make_bpr(1.0, 1.5), 1.2), 0.6), 2.0});
  cases.push_back({"scaled_shifted_mm1",
                   make_scaled(make_shifted(make_mm1(5.0), 1.5), 0.8), 2.0});
  cases.push_back({"offset_shifted_scaled_affine",
                   make_offset(make_scaled(make_shifted(make_affine(0.9, 0.1), 0.5), 1.7), 0.3),
                   4.0});
  for (int i = 0; i < 6; ++i) {
    cases.push_back({"random_affine_" + std::to_string(i),
                     make_affine(rng.uniform(0.1, 5.0), rng.uniform(0.0, 3.0)),
                     6.0});
    std::vector<double> coeffs(static_cast<std::size_t>(rng.uniform_int(1, 5)));
    for (auto& c : coeffs) c = rng.uniform(0.0, 2.0);
    coeffs.back() += 0.1;
    cases.push_back({"random_poly_" + std::to_string(i),
                     make_polynomial(std::move(coeffs)), 3.0});
  }
  return cases;
}

class TableEquivalence : public ::testing::TestWithParam<TableCase> {};

TEST_P(TableEquivalence, MatchesVirtualInterfaceBitwise) {
  const TableCase& c = GetParam();
  const std::vector<LatencyPtr> lats = {c.fn};
  const LatencyTable table = LatencyTable::compiled(lats);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.is_constant(0), c.fn->is_constant()) << c.name;

  Rng rng(4242);
  for (int k = 0; k < 200; ++k) {
    const double x = k == 0 ? 0.0 : rng.uniform(0.0, c.x_max);
    EXPECT_EQ(table.value(0, x), c.fn->value(x)) << c.name << " value @" << x;
    EXPECT_EQ(table.derivative(0, x), c.fn->derivative(x))
        << c.name << " derivative @" << x;
    EXPECT_EQ(table.integral(0, x), c.fn->integral(x))
        << c.name << " integral @" << x;
    EXPECT_EQ(table.marginal(0, x), c.fn->marginal(x))
        << c.name << " marginal @" << x;
  }
}

TEST_P(TableEquivalence, InversesMatchToTightTolerance) {
  const TableCase& c = GetParam();
  if (c.fn->is_constant()) return;  // inverses throw for constants
  const std::vector<LatencyPtr> lats = {c.fn};
  const LatencyTable table = LatencyTable::compiled(lats);

  Rng rng(1717);
  for (int k = 0; k < 100; ++k) {
    const double x = rng.uniform(0.0, c.x_max);
    {
      const double target = c.fn->value(x);
      const double a = table.inverse(0, target);
      const double b = c.fn->inverse(target);
      EXPECT_NEAR(a, b, 1e-9 * std::fmax(1.0, std::fabs(b)))
          << c.name << " inverse @" << target;
    }
    {
      const double target = c.fn->marginal(x);
      const double a = table.inverse_marginal(0, target);
      const double b = c.fn->inverse_marginal(target);
      EXPECT_NEAR(a, b, 1e-9 * std::fmax(1.0, std::fabs(b)))
          << c.name << " inverse_marginal @" << target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TableEquivalence, ::testing::ValuesIn(table_cases()),
    [](const ::testing::TestParamInfo<TableCase>& info) {
      return info.param.name;
    });

TEST(LatencyTable, BatchedKernelsMatchScalar) {
  Rng rng(99);
  std::vector<LatencyPtr> lats;
  for (const TableCase& c : table_cases()) lats.push_back(c.fn);
  const LatencyTable table = LatencyTable::compiled(lats);
  ASSERT_EQ(table.size(), lats.size());

  std::vector<double> flow(lats.size());
  for (auto& x : flow) x = rng.uniform(0.0, 1.2);
  std::vector<double> out(lats.size());

  table.values(flow, out);
  for (std::size_t i = 0; i < lats.size(); ++i) {
    EXPECT_EQ(out[i], lats[i]->value(flow[i])) << i;
  }
  table.derivatives(flow, out);
  for (std::size_t i = 0; i < lats.size(); ++i) {
    EXPECT_EQ(out[i], lats[i]->derivative(flow[i])) << i;
  }
  table.integrals(flow, out);
  for (std::size_t i = 0; i < lats.size(); ++i) {
    EXPECT_EQ(out[i], lats[i]->integral(flow[i])) << i;
  }
  table.marginals(flow, out);
  for (std::size_t i = 0; i < lats.size(); ++i) {
    EXPECT_EQ(out[i], lats[i]->marginal(flow[i])) << i;
  }
}

// An unknown subclass must compile to an opaque entry that forwards to the
// virtual object rather than mis-evaluating.
class WeirdLatency final : public LatencyFunction {
 public:
  double value(double x) const override { return x * x + 3.0; }
  double derivative(double x) const override { return 2.0 * x; }
  double integral(double x) const override { return x * x * x / 3.0 + 3.0 * x; }
  LatencyKind kind() const override { return LatencyKind::kPolynomial; }
  std::vector<double> params() const override { return {}; }  // malformed
  std::string describe() const override { return "weird"; }
};

TEST(LatencyTable, OpaqueFallbackForUnknownSubclass) {
  const std::vector<LatencyPtr> lats = {std::make_shared<WeirdLatency>()};
  const LatencyTable table = LatencyTable::compiled(lats);
  for (double x : {0.0, 0.5, 2.0, 7.25}) {
    EXPECT_EQ(table.value(0, x), lats[0]->value(x));
    EXPECT_EQ(table.derivative(0, x), lats[0]->derivative(x));
    EXPECT_EQ(table.integral(0, x), lats[0]->integral(x));
    EXPECT_EQ(table.marginal(0, x), lats[0]->marginal(x));
  }
}

TEST(LatencyTable, CompileReusesStorageAndRejectsNull) {
  LatencyTable table;
  const std::vector<LatencyPtr> a = {make_affine(1.0, 0.5), make_mm1(2.0)};
  table.compile(a);
  EXPECT_EQ(table.size(), 2u);
  const std::vector<LatencyPtr> b = {make_constant(1.0)};
  table.compile(b);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.value(0, 3.0), 1.0);

  const std::vector<LatencyPtr> bad = {nullptr};
  EXPECT_THROW(table.compile(bad), Error);
}

}  // namespace
}  // namespace stackroute

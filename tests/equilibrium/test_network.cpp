// Network equilibrium wrappers: costs, Wardrop path checker, induced
// equilibria, PoA on the paper's graphs, and agreement with the
// parallel-links solver on two-node networks.
#include "stackroute/equilibrium/network.h"

#include <gtest/gtest.h>

#include "stackroute/equilibrium/parallel.h"
#include "stackroute/network/generators.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

TEST(NetworkEquilibrium, BraessClassicCosts) {
  const NetworkInstance inst = braess_classic();
  const NetworkAssignment n = solve_nash(inst);
  const NetworkAssignment o = solve_optimum(inst);
  EXPECT_NEAR(n.cost, 2.0, 1e-7);
  EXPECT_NEAR(o.cost, 1.5, 1e-7);
  EXPECT_NEAR(price_of_anarchy(inst), 4.0 / 3.0, 1e-6);
}

TEST(NetworkEquilibrium, Fig7CostsMatchExpected) {
  const double eps = 0.05;
  const NetworkInstance inst = fig7_instance(eps);
  const Fig7Expected expected = fig7_expected(eps);
  const NetworkAssignment n = solve_nash(inst);
  const NetworkAssignment o = solve_optimum(inst);
  EXPECT_NEAR(n.cost, expected.nash_cost, 1e-6);
  EXPECT_NEAR(o.cost, expected.optimum_cost, 1e-6);
}

TEST(NetworkEquilibrium, NashFlowsPassWardropChecker) {
  Rng rng(81);
  const NetworkInstance inst = grid_city(rng, 3, 3, 1.5);
  const NetworkAssignment n = solve_nash(inst);
  const std::vector<double> zero(
      static_cast<std::size_t>(inst.graph.num_edges()), 0.0);
  EXPECT_TRUE(satisfies_wardrop(inst, n.commodity_paths, zero));
  // The optimum generally is not a Wardrop equilibrium.
  const NetworkAssignment o = solve_optimum(inst);
  (void)o;  // just ensure it solves; grids can have N == O coincidences
}

TEST(NetworkEquilibrium, WardropCheckerRejectsUnbalancedPaths) {
  const NetworkInstance inst = braess_classic();
  // All flow on the expensive outer path s->w->t while the zigzag is free.
  std::vector<std::vector<PathFlow>> paths(1);
  paths[0].push_back(PathFlow{Path{1, 4}, 1.0});
  const std::vector<double> zero(5, 0.0);
  EXPECT_FALSE(satisfies_wardrop(inst, paths, zero));
}

TEST(NetworkEquilibrium, AgreesWithParallelLinksOnTwoNodeNets) {
  Rng rng(82);
  for (int trial = 0; trial < 10; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 5, 2.0);
    const NetworkInstance inst = to_network(m);
    const LinkAssignment direct = solve_nash(m);
    const NetworkAssignment via_net = solve_nash(inst);
    EXPECT_NEAR(max_abs_diff(direct.flows, via_net.edge_flow), 0.0, 1e-6)
        << "trial " << trial;
    const LinkAssignment direct_opt = solve_optimum(m);
    const NetworkAssignment net_opt = solve_optimum(inst);
    EXPECT_NEAR(max_abs_diff(direct_opt.flows, net_opt.edge_flow), 0.0, 1e-6)
        << "trial " << trial;
  }
}

TEST(NetworkEquilibrium, InducedCostIncludesPreload) {
  // Pigou network, Leader plays the Fig-2 strategy: C(S+T) = C(O) = 3/4.
  NetworkInstance inst = to_network(pigou());
  inst.commodities[0].demand = 0.5;
  const std::vector<double> preload = {0.0, 0.5};
  const NetworkAssignment induced = solve_induced(inst, preload);
  EXPECT_NEAR(induced.cost, 0.75, 1e-7);
  EXPECT_NEAR(induced.edge_flow[0], 0.5, 1e-7);
}

TEST(NetworkEquilibrium, MulticommodityNashBalancesEachCommodity) {
  Rng rng(83);
  const NetworkInstance inst = grid_city_multicommodity(rng, 4, 4, 3, 0.3, 0.7);
  const NetworkAssignment n = solve_nash(inst);
  const std::vector<double> zero(
      static_cast<std::size_t>(inst.graph.num_edges()), 0.0);
  EXPECT_TRUE(satisfies_wardrop(inst, n.commodity_paths, zero));
}

}  // namespace
}  // namespace stackroute

// Equilibrium wrappers on parallel links: the paper's worked examples,
// Wardrop/optimality checkers, induced equilibria under preloads, and the
// Proposition 7.1 monotonicity property.
#include "stackroute/equilibrium/parallel.h"

#include <gtest/gtest.h>

#include "stackroute/latency/families.h"
#include "stackroute/network/generators.h"
#include "stackroute/util/error.h"
#include "stackroute/util/numeric.h"
#include "stackroute/util/rng.h"

namespace stackroute {
namespace {

TEST(ParallelEquilibrium, PigouFig1Numbers) {
  const ParallelLinks m = pigou();
  const LinkAssignment n = solve_nash(m);
  const LinkAssignment o = solve_optimum(m);
  EXPECT_NEAR(cost(m, n.flows), 1.0, 1e-9);    // C(N) = 1
  EXPECT_NEAR(cost(m, o.flows), 0.75, 1e-9);   // C(O) = 3/4
  EXPECT_NEAR(price_of_anarchy(m), 4.0 / 3.0, 1e-9);
}

TEST(ParallelEquilibrium, PigouFig2Fig3InducedOptimum) {
  // Leader routes 1/2 on the slow constant link; followers balance.
  const ParallelLinks m = pigou();
  const std::vector<double> strategy = {0.0, 0.5};
  const LinkAssignment t = solve_induced(m, strategy);
  EXPECT_NEAR(t.flows[0], 0.5, 1e-9);
  EXPECT_NEAR(t.flows[1], 0.0, 1e-9);
  EXPECT_NEAR(stackelberg_cost(m, strategy, t.flows), 0.75, 1e-9);
  EXPECT_TRUE(satisfies_wardrop_induced(m, strategy, t.flows));
}

TEST(ParallelEquilibrium, Fig4CostsMatchClosedForm) {
  const ParallelLinks m = fig4_instance();
  const Fig4Expected e = fig4_expected();
  const LinkAssignment n = solve_nash(m);
  const LinkAssignment o = solve_optimum(m);
  EXPECT_NEAR(cost(m, n.flows), e.nash_cost, 1e-9);
  EXPECT_NEAR(cost(m, o.flows), e.optimum_cost, 1e-9);
}

TEST(ParallelEquilibrium, NonlinearPigouPoaGrows) {
  // PoA = 1/(1 − d·(d+1)^{−(d+1)/d}) → ∞: the unbounded coordination
  // ratio of §1. Spot-check d = 1 (4/3) and monotone growth.
  const double poa1 = price_of_anarchy(pigou_nonlinear(1));
  const double poa4 = price_of_anarchy(pigou_nonlinear(4));
  const double poa10 = price_of_anarchy(pigou_nonlinear(10));
  EXPECT_NEAR(poa1, 4.0 / 3.0, 1e-9);
  EXPECT_GT(poa4, poa1);
  EXPECT_GT(poa10, poa4);
  EXPECT_GT(poa10, 2.0);
}

TEST(ParallelEquilibrium, CheckersAcceptSolutionsRejectOthers) {
  const ParallelLinks m = fig4_instance();
  const LinkAssignment n = solve_nash(m);
  const LinkAssignment o = solve_optimum(m);
  EXPECT_TRUE(satisfies_wardrop(m, n.flows));
  EXPECT_TRUE(satisfies_optimality(m, o.flows));
  EXPECT_FALSE(satisfies_wardrop(m, o.flows));   // O is not an equilibrium
  EXPECT_FALSE(satisfies_optimality(m, n.flows));
}

TEST(ParallelEquilibrium, WardropHoldsOnRandomFamilies) {
  Rng rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const ParallelLinks m = random_polynomial_links(rng, 7, 2.2);
    const LinkAssignment n = solve_nash(m);
    EXPECT_TRUE(satisfies_wardrop(m, n.flows)) << "trial " << trial;
    EXPECT_NEAR(sum(n.flows), m.demand, 1e-8);
    const LinkAssignment o = solve_optimum(m);
    EXPECT_TRUE(satisfies_optimality(m, o.flows)) << "trial " << trial;
    EXPECT_LE(cost(m, o.flows), cost(m, n.flows) + 1e-9);
  }
}

TEST(ParallelEquilibrium, Proposition71Monotonicity) {
  Rng rng(56);
  for (int trial = 0; trial < 20; ++trial) {
    ParallelLinks m = random_affine_links(rng, 6, 3.0);
    const LinkAssignment big = solve_nash(m);
    ParallelLinks smaller = m;
    smaller.demand = rng.uniform(0.5, 2.9);
    const LinkAssignment small = solve_nash(smaller);
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_LE(small.flows[i], big.flows[i] + 1e-9)
          << "trial " << trial << " link " << i;
    }
  }
}

TEST(ParallelEquilibrium, InducedWithZeroPreloadIsNash) {
  const ParallelLinks m = fig4_instance();
  const std::vector<double> zero(m.size(), 0.0);
  const LinkAssignment t = solve_induced(m, zero);
  const LinkAssignment n = solve_nash(m);
  EXPECT_NEAR(max_abs_diff(t.flows, n.flows), 0.0, 1e-9);
}

TEST(ParallelEquilibrium, InducedSatisfiesShiftedWardrop) {
  Rng rng(57);
  for (int trial = 0; trial < 20; ++trial) {
    const ParallelLinks m = random_affine_links(rng, 5, 2.0);
    // Random preload of half the demand.
    std::vector<double> preload(m.size(), 0.0);
    double left = 1.0;
    for (std::size_t i = 0; i + 1 < m.size(); ++i) {
      preload[i] = rng.uniform(0.0, left);
      left -= preload[i];
    }
    preload.back() = left;
    const LinkAssignment t = solve_induced(m, preload);
    EXPECT_TRUE(satisfies_wardrop_induced(m, preload, t.flows))
        << "trial " << trial;
    EXPECT_NEAR(sum(t.flows), m.demand - 1.0, 1e-8);
  }
}

TEST(ParallelEquilibrium, PreloadBeyondDemandThrows) {
  const ParallelLinks m = pigou();
  const std::vector<double> preload = {2.0, 0.0};
  EXPECT_THROW(solve_induced(m, preload), Error);
}

TEST(ParallelEquilibrium, SizeMismatchesThrow) {
  const ParallelLinks m = pigou();
  const std::vector<double> short_vec = {0.5};
  EXPECT_THROW(solve_induced(m, short_vec), Error);
  EXPECT_THROW(cost(m, short_vec), Error);
}

}  // namespace
}  // namespace stackroute

#!/usr/bin/env python3
"""CLI tests for check_trace.py (stdlib only, run by CTest/CI).

Each case drives the validator as a subprocess on a synthetic trace and
checks both the exit status and that failures are readable FAIL lines
rather than tracebacks — this script gates the CI traced-sweep smoke
job, so a crash in the validator would mask a broken trace.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_trace.py")


def event(name, ph, ts, pid=1, tid=0, cat="stackroute"):
    return {"name": name, "cat": cat, "ph": ph, "ts": ts,
            "pid": pid, "tid": tid}


class CheckTraceTest(unittest.TestCase):
    def run_script(self, doc, extra=()):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "trace.json")
            with open(path, "w") as fh:
                if isinstance(doc, str):
                    fh.write(doc)
                else:
                    json.dump(doc, fh)
            proc = subprocess.run([sys.executable, SCRIPT, path, *extra],
                                  capture_output=True, text=True)
        return proc

    def assert_clean_fail(self, proc):
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("FAIL:", proc.stdout)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertNotIn("Traceback", proc.stdout)

    def test_passes_on_nested_balanced_spans(self):
        doc = {"traceEvents": [
            event("solve", "B", 0.0),
            event("dijkstra", "B", 1.0),
            event("dijkstra", "E", 2.0),
            event("note", "i", 2.5),
            event("solve", "E", 3.0),
        ]}
        proc = self.run_script(doc)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("ok:", proc.stdout)

    def test_lanes_are_independent(self):
        # Interleaved chains: each tid's stack must balance on its own.
        doc = {"traceEvents": [
            event("a", "B", 0.0, tid=0),
            event("b", "B", 0.5, tid=1),
            event("a", "E", 1.0, tid=0),
            event("b", "E", 1.5, tid=1),
        ]}
        self.assertEqual(self.run_script(doc).returncode, 0)

    def test_unclosed_span_is_clean_fail(self):
        doc = {"traceEvents": [event("solve", "B", 0.0)]}
        self.assert_clean_fail(self.run_script(doc))

    def test_stray_end_is_clean_fail(self):
        doc = {"traceEvents": [event("solve", "E", 0.0)]}
        self.assert_clean_fail(self.run_script(doc))

    def test_mismatched_end_name_is_clean_fail(self):
        doc = {"traceEvents": [
            event("solve", "B", 0.0),
            event("other", "E", 1.0),
        ]}
        self.assert_clean_fail(self.run_script(doc))

    def test_backwards_timestamp_is_clean_fail(self):
        doc = {"traceEvents": [
            event("a", "B", 5.0),
            event("a", "E", 4.0),
        ]}
        self.assert_clean_fail(self.run_script(doc))

    def test_nonfinite_timestamp_is_clean_fail(self):
        # json.load accepts bare NaN; the validator must not.
        doc = '{"traceEvents": [{"name": "a", "cat": "c", "ph": "i", ' \
              '"ts": NaN, "pid": 1, "tid": 0}]}'
        self.assert_clean_fail(self.run_script(doc))

    def test_min_events_floor(self):
        # An empty trace fails the default floor of 1 (a sweep that did
        # work but produced no events means the wiring broke) but can be
        # allowed explicitly.
        doc = {"traceEvents": []}
        self.assert_clean_fail(self.run_script(doc))
        self.assertEqual(
            self.run_script(doc, ["--min-events", "0"]).returncode, 0)

    def test_garbage_json_is_clean_fail(self):
        self.assert_clean_fail(self.run_script("not json at all"))


if __name__ == "__main__":
    unittest.main()

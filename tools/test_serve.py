#!/usr/bin/env python3
"""Transport contract of stackroute-serve.

  0  every request served ok and converged
  1  usage or transport error (bad flags, unreadable replay file)
  2  served to EOF but some responses failed or were degraded

Also checks the per-line behavior: responses are valid single-line JSON
aligned with requests, malformed requests yield line-numbered errors
without killing the stream, sessions warm-start, and --replay matches the
stdin path byte for byte on stdout.

Run with the binary path as the only argument:

  test_serve.py /path/to/stackroute-serve
"""
import json
import os
import subprocess
import sys
import tempfile


def run(binary, *args, stdin=""):
    return subprocess.run(
        [binary, *args],
        input=stdin,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        timeout=300,
    )


def parse_lines(stdout):
    return [json.loads(line) for line in stdout.splitlines() if line.strip()]


def main():
    if len(sys.argv) != 2:
        print("usage: test_serve.py <stackroute-serve binary>")
        return 2
    binary = sys.argv[1]
    failures = []

    def expect(cond, name, detail=""):
        if not cond:
            failures.append(f"{name}: {detail}")

    # --- clean session ramp: warm starts and exit 0 -----------------------
    ramp = "\n".join(
        json.dumps(
            {
                "id": i,
                "op": "mop",
                "generate": "grid-bpr",
                "session": 1,
                "demand": 1.0 + 0.2 * i,
            }
        )
        for i in range(4)
    )
    proc = run(binary, stdin=ramp)
    expect(proc.returncode == 0, "ramp-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 4, "ramp-count", f"{len(resps)} responses")
    for i, r in enumerate(resps):
        expect(r["id"] == i, "ramp-id", f"response {i} has id {r['id']}")
        expect(r["ok"], "ramp-ok", f"response {i}: {r.get('error')}")
        expect(r["status"] == "converged", "ramp-status", str(r))
    expect(not resps[0]["warm"], "ramp-cold-first", str(resps[0]))
    expect(
        all(r["warm"] for r in resps[1:]),
        "ramp-warm-rest",
        proc.stdout,
    )
    expect("warm: 3/3" in proc.stderr, "ramp-summary", proc.stderr[:300])
    expect("latency ms:" in proc.stderr, "ramp-latency-line", proc.stderr[:300])

    # --- malformed requests: line-numbered errors, stream survives --------
    mixed = "\n".join(
        [
            '{"id":1,"op":"mop","generate":"grid-bpr"}',
            "this is not json",
            '{"id":3,"op":"frobnicate","generate":"grid-bpr"}',
            '{"id":4,"op":"mop","generate":"grid-bpr","bogus_key":1}',
            '{"id":5,"op":"mop"}',
            '{"id":6,"op":"strategy","strategy":"scale","generate":"grid-bpr"}',
            '{"id":7,"op":"mop","generate":"grid-bpr"}',
        ]
    )
    proc = run(binary, stdin=mixed)
    expect(proc.returncode == 2, "mixed-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 7, "mixed-count", f"{len(resps)} responses")
    expect(resps[0]["ok"] and resps[6]["ok"], "mixed-bookends", proc.stdout)
    for idx, line_no, needle in [
        (1, 2, "invalid"),
        (2, 3, "unknown request kind"),
        (3, 4, "bogus_key"),
        (4, 5, "instance source"),
        (5, 6, "alpha"),
    ]:
        r = resps[idx]
        expect(not r["ok"], f"mixed-{line_no}-fails", str(r))
        expect(
            r.get("error", "").startswith(f"line {line_no}:"),
            f"mixed-{line_no}-line-tag",
            r.get("error", ""),
        )
        expect(needle in r.get("error", ""), f"mixed-{line_no}-msg", str(r))

    # --- hostile numbers: out-of-range / non-integral integer fields are
    # per-line errors (never UB casts), and the stream survives ------------
    hostile = "\n".join(
        [
            '{"id":1e300,"op":"mop","generate":"grid-bpr"}',
            '{"id":1.5,"op":"mop","generate":"grid-bpr"}',
            '{"id":2,"op":"equilibrium","generate":"grid-bpr",'
            '"method":"fw","max_iters":1e300}',
            '{"id":3,"op":"mop","generate":"grid-bpr","size":1e100}',
            '{"id":4,"op":"mop","generate":"grid-bpr","session":-1}',
            '{"id":5,"op":"mop","generate":"grid-bpr"}',
        ]
    )
    proc = run(binary, stdin=hostile)
    expect(proc.returncode == 2, "hostile-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 6, "hostile-count", f"{len(resps)} responses")
    for idx, line_no, field in [
        (0, 1, "id"),
        (1, 2, "id"),
        (2, 3, "max_iters"),
        (3, 4, "size"),
        (4, 5, "session"),
    ]:
        r = resps[idx]
        expect(not r["ok"], f"hostile-{line_no}-fails", str(r))
        expect(
            r.get("error", "").startswith(f"line {line_no}:"),
            f"hostile-{line_no}-line-tag",
            r.get("error", ""),
        )
        expect(field in r.get("error", ""), f"hostile-{line_no}-msg", str(r))
    expect(resps[5]["ok"], "hostile-stream-survives", str(resps[5]))

    # --- session cap: the 257th concurrent session is a per-line error;
    # closing one frees a slot --------------------------------------------
    cap_lines = [
        json.dumps(
            {
                "id": i,
                "op": "optimum",
                "generate": "parallel-affine",
                "session": i + 1,
            }
        )
        for i in range(257)
    ]
    cap_lines.append('{"id":900,"op":"close","session":1}')
    cap_lines.append(
        '{"id":901,"op":"optimum","generate":"parallel-affine",'
        '"session":999}'
    )
    proc = run(binary, stdin="\n".join(cap_lines))
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 259, "cap-count", f"{len(resps)} responses")
    expect(
        all(r["ok"] for r in resps[:256]),
        "cap-under",
        next((str(r) for r in resps[:256] if not r["ok"]), ""),
    )
    expect(
        not resps[256]["ok"] and "sessions" in resps[256].get("error", ""),
        "cap-over",
        str(resps[256]),
    )
    expect(resps[257]["ok"], "cap-close", str(resps[257]))
    expect(resps[258]["ok"], "cap-reopen-after-close", str(resps[258]))

    # --- degraded rows: budget-capped solve exits 2, labeled honestly -----
    degraded = json.dumps(
        {
            "id": 1,
            "op": "equilibrium",
            "generate": "grid-bpr",
            "demand": 2.0,
            "method": "fw",
            "max_iters": 1,
        }
    )
    proc = run(binary, stdin=degraded)
    expect(proc.returncode == 2, "degraded-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(
        resps and resps[0]["ok"] and resps[0]["status"] != "converged",
        "degraded-status",
        proc.stdout,
    )

    # --- replay mode: same stdout as the stdin path -----------------------
    with tempfile.NamedTemporaryFile(
        "w", suffix=".ldjson", delete=False
    ) as f:
        f.write(ramp + "\n")
        replay_path = f.name
    try:
        direct = run(binary, "--quiet", stdin=ramp)
        replay = run(binary, "--quiet", "--replay", replay_path)
        expect(replay.returncode == 0, "replay-exit", f"{replay.returncode}")

        def strip_clock(stdout):
            out = []
            for r in parse_lines(stdout):
                r.pop("millis", None)
                out.append(r)
            return out

        # Everything but the wall clock is deterministic across the two
        # transports — including every solved cost, bit for bit.
        expect(
            strip_clock(direct.stdout) == strip_clock(replay.stdout),
            "replay-matches-stdin",
            "responses differ between --replay and stdin",
        )
        expect(
            direct.stderr.strip() == "",
            "quiet-suppresses-summary",
            direct.stderr[:200],
        )
    finally:
        os.unlink(replay_path)

    # --- usage / transport errors ----------------------------------------
    expect(
        run(binary, "--bogus").returncode == 1,
        "unknown-flag",
        "expected exit 1",
    )
    expect(
        run(binary, "--replay", "/no/such/file.ldjson").returncode == 1,
        "missing-replay-file",
        "expected exit 1",
    )
    expect(run(binary, "--help").returncode == 0, "help", "expected exit 0")

    # --- session close ----------------------------------------------------
    close = "\n".join(
        [
            '{"id":1,"op":"mop","generate":"grid-bpr","session":9}',
            '{"id":2,"op":"close","session":9}',
            '{"id":3,"op":"close","session":9}',
        ]
    )
    proc = run(binary, stdin=close)
    resps = parse_lines(proc.stdout)
    expect(resps[1]["ok"], "close-known", str(resps[1]))
    expect(not resps[2]["ok"], "close-unknown", str(resps[2]))

    if failures:
        print("FAIL:\n" + "\n".join(failures))
        return 1
    print("ok: serve transport contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())

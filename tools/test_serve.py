#!/usr/bin/env python3
"""Transport contract of stackroute-serve.

  0  every request served ok and converged
  1  usage or transport error (bad flags, unreadable replay file)
  2  served to EOF but some responses failed or were degraded

Also checks the per-line behavior: responses are valid single-line JSON
aligned with requests, malformed requests yield line-numbered errors
without killing the stream, sessions warm-start, and --replay matches the
stdin path byte for byte on stdout.

Run with the binary path as the only argument:

  test_serve.py /path/to/stackroute-serve
"""
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time


def run(binary, *args, stdin=""):
    return subprocess.run(
        [binary, *args],
        input=stdin,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        timeout=300,
    )


def parse_lines(stdout):
    return [json.loads(line) for line in stdout.splitlines() if line.strip()]


def main():
    if len(sys.argv) != 2:
        print("usage: test_serve.py <stackroute-serve binary>")
        return 2
    binary = sys.argv[1]
    failures = []

    def expect(cond, name, detail=""):
        if not cond:
            failures.append(f"{name}: {detail}")

    # --- clean session ramp: warm starts and exit 0 -----------------------
    ramp = "\n".join(
        json.dumps(
            {
                "id": i,
                "op": "mop",
                "generate": "grid-bpr",
                "session": 1,
                "demand": 1.0 + 0.2 * i,
            }
        )
        for i in range(4)
    )
    proc = run(binary, stdin=ramp)
    expect(proc.returncode == 0, "ramp-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 4, "ramp-count", f"{len(resps)} responses")
    for i, r in enumerate(resps):
        expect(r["id"] == i, "ramp-id", f"response {i} has id {r['id']}")
        expect(r["ok"], "ramp-ok", f"response {i}: {r.get('error')}")
        expect(r["status"] == "converged", "ramp-status", str(r))
    expect(not resps[0]["warm"], "ramp-cold-first", str(resps[0]))
    expect(
        all(r["warm"] for r in resps[1:]),
        "ramp-warm-rest",
        proc.stdout,
    )
    expect("warm: 3/3" in proc.stderr, "ramp-summary", proc.stderr[:300])
    expect("latency ms:" in proc.stderr, "ramp-latency-line", proc.stderr[:300])

    # --- malformed requests: line-numbered errors, stream survives --------
    mixed = "\n".join(
        [
            '{"id":1,"op":"mop","generate":"grid-bpr"}',
            "this is not json",
            '{"id":3,"op":"frobnicate","generate":"grid-bpr"}',
            '{"id":4,"op":"mop","generate":"grid-bpr","bogus_key":1}',
            '{"id":5,"op":"mop"}',
            '{"id":6,"op":"strategy","strategy":"scale","generate":"grid-bpr"}',
            '{"id":7,"op":"mop","generate":"grid-bpr"}',
        ]
    )
    proc = run(binary, stdin=mixed)
    expect(proc.returncode == 2, "mixed-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 7, "mixed-count", f"{len(resps)} responses")
    expect(resps[0]["ok"] and resps[6]["ok"], "mixed-bookends", proc.stdout)
    for idx, line_no, needle in [
        (1, 2, "invalid"),
        (2, 3, "unknown request kind"),
        (3, 4, "bogus_key"),
        (4, 5, "instance source"),
        (5, 6, "alpha"),
    ]:
        r = resps[idx]
        expect(not r["ok"], f"mixed-{line_no}-fails", str(r))
        expect(
            r.get("error", "").startswith(f"line {line_no}:"),
            f"mixed-{line_no}-line-tag",
            r.get("error", ""),
        )
        expect(needle in r.get("error", ""), f"mixed-{line_no}-msg", str(r))

    # --- hostile numbers: out-of-range / non-integral integer fields are
    # per-line errors (never UB casts), and the stream survives ------------
    hostile = "\n".join(
        [
            '{"id":1e300,"op":"mop","generate":"grid-bpr"}',
            '{"id":1.5,"op":"mop","generate":"grid-bpr"}',
            '{"id":2,"op":"equilibrium","generate":"grid-bpr",'
            '"method":"fw","max_iters":1e300}',
            '{"id":3,"op":"mop","generate":"grid-bpr","size":1e100}',
            '{"id":4,"op":"mop","generate":"grid-bpr","session":-1}',
            '{"id":5,"op":"mop","generate":"grid-bpr"}',
        ]
    )
    proc = run(binary, stdin=hostile)
    expect(proc.returncode == 2, "hostile-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 6, "hostile-count", f"{len(resps)} responses")
    for idx, line_no, field in [
        (0, 1, "id"),
        (1, 2, "id"),
        (2, 3, "max_iters"),
        (3, 4, "size"),
        (4, 5, "session"),
    ]:
        r = resps[idx]
        expect(not r["ok"], f"hostile-{line_no}-fails", str(r))
        expect(
            r.get("error", "").startswith(f"line {line_no}:"),
            f"hostile-{line_no}-line-tag",
            r.get("error", ""),
        )
        expect(field in r.get("error", ""), f"hostile-{line_no}-msg", str(r))
    expect(resps[5]["ok"], "hostile-stream-survives", str(resps[5]))

    # --- session cap: the 257th concurrent session is a per-line error;
    # closing one frees a slot --------------------------------------------
    cap_lines = [
        json.dumps(
            {
                "id": i,
                "op": "optimum",
                "generate": "parallel-affine",
                "session": i + 1,
            }
        )
        for i in range(257)
    ]
    cap_lines.append('{"id":900,"op":"close","session":1}')
    cap_lines.append(
        '{"id":901,"op":"optimum","generate":"parallel-affine",'
        '"session":999}'
    )
    proc = run(binary, stdin="\n".join(cap_lines))
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 259, "cap-count", f"{len(resps)} responses")
    expect(
        all(r["ok"] for r in resps[:256]),
        "cap-under",
        next((str(r) for r in resps[:256] if not r["ok"]), ""),
    )
    expect(
        not resps[256]["ok"] and "sessions" in resps[256].get("error", ""),
        "cap-over",
        str(resps[256]),
    )
    expect(resps[257]["ok"], "cap-close", str(resps[257]))
    expect(resps[258]["ok"], "cap-reopen-after-close", str(resps[258]))

    # --- degraded rows: budget-capped solve exits 2, labeled honestly -----
    degraded = json.dumps(
        {
            "id": 1,
            "op": "equilibrium",
            "generate": "grid-bpr",
            "demand": 2.0,
            "method": "fw",
            "max_iters": 1,
        }
    )
    proc = run(binary, stdin=degraded)
    expect(proc.returncode == 2, "degraded-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(
        resps and resps[0]["ok"] and resps[0]["status"] != "converged",
        "degraded-status",
        proc.stdout,
    )

    # --- backend selection: "backend" is canonical, "method" the legacy
    # spelling, bush solves for real, and unknown names are per-line
    # errors that do not kill the stream ----------------------------------
    backend_stream = "\n".join(
        [
            '{"id":1,"op":"equilibrium","generate":"grid-bpr",'
            '"backend":"bush"}',
            '{"id":2,"op":"equilibrium","generate":"grid-bpr",'
            '"method":"bush"}',
            '{"id":3,"op":"equilibrium","generate":"grid-bpr",'
            '"backend":"simplex"}',
            '{"id":4,"op":"equilibrium","generate":"grid-bpr",'
            '"method":"simplex"}',
            '{"id":5,"op":"equilibrium","generate":"grid-bpr"}',
        ]
    )
    proc = run(binary, stdin=backend_stream)
    expect(proc.returncode == 2, "backend-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 5, "backend-count", f"{len(resps)} responses")
    for idx, name in [(0, "backend"), (1, "method")]:
        r = resps[idx]
        expect(
            r["ok"] and r["status"] == "converged",
            f"backend-bush-via-{name}",
            str(r),
        )
    for idx, line_no, field in [(2, 3, "backend"), (3, 4, "method")]:
        r = resps[idx]
        expect(
            not r["ok"]
            and f"field '{field}'" in r.get("error", "")
            and "unknown backend" in r.get("error", ""),
            f"backend-unknown-{field}",
            str(r),
        )
    expect(resps[4]["ok"], "backend-stream-survives", str(resps[4]))
    # The default pe path and the bush backend agree on equilibrium cost.
    rel = abs(resps[0]["cost"] - resps[4]["cost"]) / max(
        abs(resps[4]["cost"]), 1.0
    )
    expect(rel <= 1e-6, "backend-costs-agree", proc.stdout)

    # --backend sets the server-wide default; unknown names are usage
    # errors with exactly one usage block.
    one = '{"id":1,"op":"equilibrium","generate":"grid-bpr"}'
    proc = run(binary, "--backend", "bush", stdin=one)
    resps = parse_lines(proc.stdout)
    expect(
        proc.returncode == 0 and resps and resps[0]["ok"],
        "backend-flag-default",
        proc.stdout,
    )
    proc = run(binary, "--backend", "simplex", stdin=one)
    expect(
        proc.returncode == 1 and "unknown backend" in proc.stderr,
        "backend-flag-unknown",
        f"exit {proc.returncode}: {proc.stderr[:200]}",
    )
    expect(
        proc.stderr.count("usage: stackroute-serve") == 1,
        "backend-flag-usage-once",
        proc.stderr[:200],
    )

    # --- replay mode: same stdout as the stdin path -----------------------
    with tempfile.NamedTemporaryFile(
        "w", suffix=".ldjson", delete=False
    ) as f:
        f.write(ramp + "\n")
        replay_path = f.name
    try:
        direct = run(binary, "--quiet", stdin=ramp)
        replay = run(binary, "--quiet", "--replay", replay_path)
        expect(replay.returncode == 0, "replay-exit", f"{replay.returncode}")

        def strip_clock(stdout):
            out = []
            for r in parse_lines(stdout):
                r.pop("millis", None)
                out.append(r)
            return out

        # Everything but the wall clock is deterministic across the two
        # transports — including every solved cost, bit for bit.
        expect(
            strip_clock(direct.stdout) == strip_clock(replay.stdout),
            "replay-matches-stdin",
            "responses differ between --replay and stdin",
        )
        expect(
            direct.stderr.strip() == "",
            "quiet-suppresses-summary",
            direct.stderr[:200],
        )
    finally:
        os.unlink(replay_path)

    # --- usage / transport errors ----------------------------------------
    expect(
        run(binary, "--bogus").returncode == 1,
        "unknown-flag",
        "expected exit 1",
    )
    expect(
        run(binary, "--replay", "/no/such/file.ldjson").returncode == 1,
        "missing-replay-file",
        "expected exit 1",
    )
    expect(run(binary, "--help").returncode == 0, "help", "expected exit 0")

    # --- session close ----------------------------------------------------
    close = "\n".join(
        [
            '{"id":1,"op":"mop","generate":"grid-bpr","session":9}',
            '{"id":2,"op":"close","session":9}',
            '{"id":3,"op":"close","session":9}',
        ]
    )
    proc = run(binary, stdin=close)
    resps = parse_lines(proc.stdout)
    expect(resps[1]["ok"], "close-known", str(resps[1]))
    expect(not resps[2]["ok"], "close-unknown", str(resps[2]))

    # --- hostile input: oversized lines are per-line errors, the stream
    # survives, and a final line without a newline is still served --------
    long_pad = "x" * 300
    hostile_stream = "\n".join(
        [
            '{"id":1,"op":"mop","generate":"grid-bpr"}',
            '{"id":2,"op":"mop","generate":"grid-bpr","instance":"'
            + long_pad
            + '"}',
            "\x00\x01\x02 binary garbage \xff",
            '{"id":4,"op":"mop","generate":"grid-bpr"}',
        ]
    )
    proc = run(binary, "--max-line-bytes", "128", stdin=hostile_stream)
    expect(proc.returncode == 2, "oversize-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(len(resps) == 4, "oversize-count", f"{len(resps)} responses")
    expect(resps[0]["ok"], "oversize-first-ok", str(resps[0]))
    expect(
        not resps[1]["ok"]
        and "line 2:" in resps[1].get("error", "")
        and "exceeds 128 bytes" in resps[1].get("error", ""),
        "oversize-typed",
        str(resps[1]),
    )
    expect(
        not resps[2]["ok"] and "line 3:" in resps[2].get("error", ""),
        "oversize-garbage-line",
        str(resps[2]),
    )
    expect(resps[3]["ok"], "oversize-stream-survives", str(resps[3]))

    # Mid-line EOF: a final request without a trailing newline is served.
    proc = run(binary, stdin='{"id":9,"op":"mop","generate":"grid-bpr"}')
    resps = parse_lines(proc.stdout)
    expect(
        proc.returncode == 0 and len(resps) == 1 and resps[0]["id"] == 9,
        "midline-eof",
        f"exit {proc.returncode}, {len(resps)} responses",
    )

    # --- byte budgets: responses carry "bytes", summary reports memory ----
    proc = run(
        binary,
        "--table-budget-mb",
        "64",
        "--session-budget-mb",
        "64",
        stdin=ramp,
    )
    expect(proc.returncode == 0, "budget-exit", f"exit {proc.returncode}")
    resps = parse_lines(proc.stdout)
    expect(
        all("bytes" in r and r["bytes"] > 0 for r in resps),
        "budget-bytes-field",
        proc.stdout,
    )
    expect("memory: table cache" in proc.stderr, "budget-memory-line",
           proc.stderr[:400])
    expect("admission:" in proc.stderr, "budget-admission-line",
           proc.stderr[:400])

    # --- graceful shutdown: SIGINT drains in-flight work, refuses later
    # lines with typed errors, and still flushes the summary ---------------
    proc = subprocess.Popen(
        [binary],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        for i in range(2):
            proc.stdin.write(
                json.dumps(
                    {"id": i, "op": "mop", "generate": "grid-bpr",
                     "session": 1, "demand": 1.0 + 0.1 * i}
                )
                + "\n"
            )
        proc.stdin.flush()
        time.sleep(0.5)  # let both solves finish
        proc.send_signal(signal.SIGINT)
        time.sleep(0.3)  # let the reader notice and begin shutdown
        for i in (90, 91):
            proc.stdin.write(
                json.dumps({"id": i, "op": "mop", "generate": "grid-bpr"})
                + "\n"
            )
        proc.stdin.flush()
        proc.stdin.close()
        out = proc.stdout.read()
        err = proc.stderr.read()
        proc.wait(timeout=60)
    except Exception as e:  # noqa: BLE001 - any wedge is the failure
        proc.kill()
        out = err = ""
        expect(False, "shutdown-wedged", repr(e))
    resps = parse_lines(out)
    expect(len(resps) == 4, "shutdown-count", f"{len(resps)} responses")
    expect(
        all(r["ok"] for r in resps[:2]),
        "shutdown-drains-inflight",
        out,
    )
    refusals = [r for r in resps[2:] if not r.get("ok")]
    expect(
        len(refusals) == 2
        and all(r.get("status") == "overloaded" for r in refusals)
        and all("shutting down" in r.get("error", "") for r in refusals),
        "shutdown-typed-refusals",
        out,
    )
    expect("admission:" in err and "2 refused" in err,
           "shutdown-summary-flushed", err[:400])
    expect(proc.returncode == 2, "shutdown-exit", f"exit {proc.returncode}")

    # --- socket mode: concurrent clients, shed under overload, and a
    # client that disconnects with work pending ----------------------------
    sock_dir = tempfile.mkdtemp()
    sock_path = os.path.join(sock_dir, "serve.sock")

    def start_server(*extra):
        p = subprocess.Popen(
            [binary, "--socket", sock_path, *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.time() + 10
        while time.time() < deadline:
            if os.path.exists(sock_path):
                try:
                    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    probe.connect(sock_path)
                    probe.close()
                    return p
                except OSError:
                    pass
            time.sleep(0.05)
        p.kill()
        raise RuntimeError("server socket never came up")

    def stop_server(p):
        p.send_signal(signal.SIGINT)
        try:
            return p.communicate(timeout=60)
        except subprocess.TimeoutExpired:
            p.kill()
            out, err = p.communicate()
            expect(False, "socket-shutdown-wedged", err[:400])
            return out, err

    def socket_session(lines):
        """Sends all lines, half-closes, reads every response to EOF."""
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.connect(sock_path)
        payload = ("".join(ln + "\n" for ln in lines)).encode()
        s.sendall(payload)
        s.shutdown(socket.SHUT_WR)
        buf = b""
        while True:
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
        s.close()
        return [json.loads(ln) for ln in buf.decode().splitlines() if ln]

    # Concurrent well-behaved clients: every request answered ok, warm
    # chains independent per client.
    server = start_server("--workers", "2")
    client_resps = {}

    def client_task(k):
        lines = [
            json.dumps(
                {"id": k * 100 + i, "op": "mop", "generate": "grid-bpr",
                 "session": 1, "demand": 1.0 + 0.1 * i}
            )
            for i in range(4)
        ]
        client_resps[k] = socket_session(lines)

    threads = [
        threading.Thread(target=client_task, args=(k,)) for k in range(3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for k in range(3):
        resps = client_resps.get(k, [])
        expect(len(resps) == 4, f"socket-client{k}-count", str(resps))
        expect(
            all(r.get("ok") for r in resps),
            f"socket-client{k}-ok",
            str(resps),
        )
        got_ids = [r["id"] for r in resps]
        expect(
            got_ids == [k * 100 + i for i in range(4)],
            f"socket-client{k}-order",
            str(got_ids),
        )

    # Disconnect with pending work: dump requests and slam the socket shut.
    # The server must survive and keep serving others.
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(sock_path)
    burst = "".join(
        json.dumps(
            {"id": i, "op": "mop", "generate": "grid-bpr", "session": 1,
             "demand": 1.0 + 0.01 * i}
        )
        + "\n"
        for i in range(20)
    )
    s.sendall(burst.encode())
    s.close()  # no SHUT_WR handshake, no reads: an abrupt disconnect
    survivor = socket_session(
        ['{"id":7,"op":"mop","generate":"grid-bpr"}']
    )
    expect(
        len(survivor) == 1 and survivor[0]["ok"],
        "socket-survives-disconnect",
        str(survivor),
    )
    out, err = stop_server(server)
    expect("serve:" in err and "admission:" in err,
           "socket-summary", err[:400])

    # Saturation: many clients against a tiny queue — typed sheds, every
    # line answered, no crash.
    server = start_server(
        "--workers", "2", "--max-queue", "4", "--max-client-queue", "2"
    )
    sat_resps = {}

    def sat_task(k):
        lines = [
            json.dumps(
                {"id": k * 1000 + i, "op": "equilibrium",
                 "generate": "grid-bpr", "demand": 1.0 + 0.01 * i}
            )
            for i in range(30)
        ]
        sat_resps[k] = socket_session(lines)

    threads = [
        threading.Thread(target=sat_task, args=(k,)) for k in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = sum(len(v) for v in sat_resps.values())
    expect(total == 8 * 30, "saturation-no-lost", f"{total} responses")
    shed = [
        r
        for v in sat_resps.values()
        for r in v
        if not r.get("ok") and r.get("status") == "overloaded"
    ]
    served_ok = [r for v in sat_resps.values() for r in v if r.get("ok")]
    expect(shed, "saturation-sheds-typed", "no typed sheds under 8x load")
    expect(served_ok, "saturation-some-served", "nothing served at all")
    expect(
        all(
            r.get("ok") or r.get("status") == "overloaded"
            for v in sat_resps.values()
            for r in v
        ),
        "saturation-all-typed",
        "untyped failure under load",
    )
    out, err = stop_server(server)
    expect(server.returncode == 2, "saturation-exit",
           f"exit {server.returncode}")
    expect("shed" in err, "saturation-summary", err[:400])

    if failures:
        print("FAIL:\n" + "\n".join(failures))
        return 1
    print("ok: serve transport contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Exit-code contract of stackroute-sweep.

  0  clean sweep (every row converged)
  1  usage error (bad flags/values) or runtime error
  2  sweep completed but some rows failed or were degraded

Run with the binary path as the only argument:

  test_cli_exit_codes.py /path/to/stackroute-sweep
"""
import subprocess
import sys


def run(binary, *args):
    proc = subprocess.run(
        [binary, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        timeout=300,
    )
    return proc


def main():
    if len(sys.argv) != 2:
        print("usage: test_cli_exit_codes.py <stackroute-sweep binary>")
        return 2
    binary = sys.argv[1]
    failures = []

    def check(name, expected_code, *args, stderr_contains=None):
        proc = run(binary, *args)
        if proc.returncode != expected_code:
            failures.append(
                f"{name}: expected exit {expected_code}, got {proc.returncode}"
                f"\n  stderr: {proc.stderr.strip()[:300]}"
            )
            return None
        if stderr_contains is not None and stderr_contains not in proc.stderr:
            failures.append(
                f"{name}: stderr missing {stderr_contains!r}"
                f"\n  stderr: {proc.stderr.strip()[:300]}"
            )
        return proc

    common = ["--scenario", "pigou-grid", "--threads", "1", "--format", "csv"]

    # 0: clean run.
    clean = check("clean", 0, *common)

    # 0: the listing flags, and --list-scenarios/--list parity.
    scenarios = check("list-scenarios", 0, "--list-scenarios")
    list_short = check("list-short", 0, "--list")
    if (
        scenarios is not None
        and list_short is not None
        and scenarios.stdout != list_short.stdout
    ):
        failures.append("list-scenarios: output differs from --list")
    if scenarios is not None and "pigou-grid" not in scenarios.stdout:
        failures.append("list-scenarios: pigou-grid missing from the listing")
    generators = check("list-generators", 0, "--list-generators")
    if generators is not None and "grid-bpr" not in generators.stdout:
        failures.append("list-generators: grid-bpr missing from the listing")

    # Usage errors print the usage text exactly once (no doubled footer
    # when an error path and the catch-all both try to print it).
    bad = run(binary, "--bogus")
    if bad.stderr.count("usage: stackroute-sweep") != 1:
        failures.append(
            "usage-footer: expected exactly one usage block on stderr, got "
            f"{bad.stderr.count('usage: stackroute-sweep')}"
        )

    # 1: usage errors — unknown flag, bad value, bad inject spec, unknown
    # scenario.
    check("unknown-flag", 1, "--bogus")
    check("bad-threads", 1, *common[:4], "--threads", "-2")
    check("bad-inject-kind", 1, *common, "--inject", "frobnicate:1")
    check("bad-inject-field", 1, *common, "--inject", "fail:xyz")
    check("unknown-scenario", 1, "--scenario", "no-such-scenario")

    # --backend: unknown names are usage errors (one footer, like unknown
    # scenarios), and the flag needs an instance sweep, sans --strategy.
    gen = [
        "--generate", "grid-bpr", "--threads", "1", "--format", "csv",
        "--demand", "1.0", "2.0", "3",
    ]
    bad_backend = check(
        "unknown-backend", 1, *gen, "--backend", "simplex",
        stderr_contains="unknown backend",
    )
    if (
        bad_backend is not None
        and bad_backend.stderr.count("usage: stackroute-sweep") != 1
    ):
        failures.append(
            "unknown-backend: expected exactly one usage block on stderr, "
            f"got {bad_backend.stderr.count('usage: stackroute-sweep')}"
        )
    check("backend-needs-instance", 1, "--backend", "bush")
    check(
        "backend-vs-strategy", 1, *gen, "--backend", "bush",
        "--strategy", "llf",
    )

    # 0: pe and bush both sweep cleanly and agree on every Nash cost.
    pe_run = check("backend-pe", 0, *gen, "--backend", "pe")
    bush_run = check("backend-bush", 0, *gen, "--backend", "bush")
    if pe_run is not None and bush_run is not None:
        def nash_costs(stdout):
            rows = [ln.split(",") for ln in stdout.splitlines() if ln.strip()]
            col = rows[0].index("nash_cost")
            return [float(r[col]) for r in rows[1:]]

        pe_costs = nash_costs(pe_run.stdout)
        bush_costs = nash_costs(bush_run.stdout)
        if len(pe_costs) != 3 or len(bush_costs) != 3:
            failures.append(
                f"backend-agree: expected 3 rows, got {len(pe_costs)} pe / "
                f"{len(bush_costs)} bush"
            )
        elif any(
            abs(a - b) > 1e-6 * max(abs(a), abs(b), 1.0)
            for a, b in zip(pe_costs, bush_costs)
        ):
            failures.append(
                f"backend-agree: pe {pe_costs} vs bush {bush_costs}"
            )

    # 2: completed with a failed row (fail twice to defeat the one cold
    # retry), with the per-task error line on stderr.
    check(
        "injected-failure",
        2,
        *common,
        "--inject",
        "fail:2:2",
        stderr_contains="task 2",
    )

    # 2: completed with degraded rows (NaN latency on a network assignment
    # surfaces as a degraded solve, not a crash).
    check(
        "injected-nan-degraded",
        2,
        "--scenario",
        "grid-bpr",
        "--threads",
        "1",
        "--format",
        "csv",
        "--inject",
        "nan:1:3",
    )

    # 0: the same NaN on a warm-started water-filling solve is healed by
    # the solver's warm-fallback (cold rerun sees clean arithmetic).
    check("injected-nan-healed", 0, *common, "--inject", "nan:1:3")

    # 0: a single injected failure is healed by the default cold retry.
    healed = check("healed-by-retry", 0, *common, "--inject", "fail:2:1")

    # The healed table must match the clean table byte for byte.
    if clean is not None and healed is not None and clean.stdout != healed.stdout:
        failures.append("healed-by-retry: table differs from the clean run")

    if failures:
        print("FAIL:\n" + "\n".join(failures))
        return 1
    print("ok: exit-code contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Diff fresh Google Benchmark JSON against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json COUNTER [COUNTER...]
        [--threshold 0.25]

Fails (exit 1) when any named counter's cpu_time is more than
``threshold`` slower than the baseline, when a counter is missing from
either file, or when the fresh run was not produced by a Release build of
the library (the ``stackroute_build_type`` custom context stamped by
bench/bench_main.h). Speedups and small noise pass; shared-runner timings
are indicative, so the threshold is generous by design — this is a
tripwire for order-of-magnitude mistakes (debug baselines, accidentally
devectorized hot loops), not a microbenchmark judge.

``--calibrate NAME`` makes the comparison machine-independent: the
baseline is rescaled by fresh[NAME]/baseline[NAME] before the threshold
applies, so what is actually gated is each counter's ratio to the
calibration counter — CI runners and the host the baseline was recorded
on need not share a clock. Pick a calibration counter from a different
code path than the gated ones (a regression that hits both cancels out);
for the warm-chain counters the natural choice is their own cold
counterpart, which turns the gate into "the warm speedup must not shrink
by more than threshold".
"""

import argparse
import json
import sys


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    benchmarks = {b["name"]: b for b in doc.get("benchmarks", [])
                  if "name" in b}
    return doc.get("context", {}), benchmarks


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("counters", nargs="+")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--calibrate", metavar="NAME", default=None,
                        help="rescale the baseline by fresh/baseline of "
                             "this counter (machine-speed normalization)")
    args = parser.parse_args()

    base_ctx, base = load(args.baseline)
    fresh_ctx, fresh = load(args.fresh)

    failed = False
    scale = 1.0
    if args.calibrate is not None:
        if args.calibrate not in base or args.calibrate not in fresh:
            print(f"FAIL: calibration counter {args.calibrate!r} missing")
            return 1
        base_cal = base[args.calibrate].get("cpu_time")
        fresh_cal = fresh[args.calibrate].get("cpu_time")
        # A zero or absent cpu_time means the baseline is unusable (e.g. a
        # truncated or hand-edited JSON): fail cleanly, don't divide by it.
        if not base_cal or not fresh_cal:
            print(f"FAIL: calibration counter {args.calibrate!r} has "
                  f"unusable cpu_time (baseline {base_cal!r}, "
                  f"fresh {fresh_cal!r})")
            return 1
        scale = fresh_cal / base_cal
        print(f"calibration {args.calibrate}: fresh/baseline = {scale:.2f}x")
    build = fresh_ctx.get("stackroute_build_type")
    if build != "Release":
        print(f"FAIL: fresh run built as {build!r}, need 'Release' "
              "(perf JSON from non-Release builds is not comparable)")
        failed = True

    for name in args.counters:
        missing = [label for label, table in (("baseline", base),
                                              ("fresh", fresh))
                   if name not in table]
        if missing:
            print(f"FAIL: counter {name!r} missing from {', '.join(missing)}")
            failed = True
            continue
        b, f = base[name], fresh[name]
        if b.get("time_unit") != f.get("time_unit"):
            print(f"FAIL: {name}: time_unit mismatch "
                  f"({b.get('time_unit')} vs {f.get('time_unit')})")
            failed = True
            continue
        if not b.get("cpu_time") or not f.get("cpu_time"):
            # Guard the division below: a zero or missing cpu_time must be
            # a readable FAIL line, not a ZeroDivisionError traceback.
            print(f"FAIL: {name}: unusable cpu_time "
                  f"(baseline {b.get('cpu_time')!r}, "
                  f"fresh {f.get('cpu_time')!r})")
            failed = True
            continue
        ratio = f["cpu_time"] / (b["cpu_time"] * scale)
        verdict = "ok" if ratio <= 1.0 + args.threshold else "REGRESSION"
        print(f"{verdict}: {name}: {b['cpu_time']:.3f} -> "
              f"{f['cpu_time']:.3f} {b['time_unit']} "
              f"({ratio:.2f}x of calibrated baseline)")
        if verdict != "ok":
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

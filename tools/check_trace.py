#!/usr/bin/env python3
"""Validate a stackroute chrome://tracing span trace (stdlib only).

Usage:
    check_trace.py TRACE.json [--min-events N]
    check_trace.py --sweep SWEEP_BINARY TRACE.json [--min-events N]
        [-- SWEEP_ARGS...]

With ``--sweep`` the named stackroute-sweep binary is run first with
``--trace TRACE.json`` plus everything after ``--`` (default: a small
generated demand sweep), then the written file is validated. This is the
CI/CTest smoke path: it proves the whole chain — instrumented solvers,
per-chain sessions, the merge-and-export — produces a file that
chrome://tracing / Perfetto will actually load.

What "valid" means here:
  * the document is a JSON object with a ``traceEvents`` list;
  * every event carries name (str), cat (str), ph in {B, E, i},
    a finite non-negative numeric ts, and integer pid/tid;
  * per (pid, tid) lane, taken in file order: every E closes the
    most-recently-opened B with the same name (proper nesting), no E
    without an open B, and no B left open at the end;
  * per lane, timestamps are non-decreasing (sessions are
    single-threaded and append in time order);
  * at least ``--min-events`` events overall (default 1 — an empty
    trace of a sweep that did work means the wiring is broken).

Failures print ``FAIL: ...`` lines and exit 1; crashes with tracebacks
are themselves bugs (this script gates CI).
"""

import argparse
import json
import math
import subprocess
import sys

VALID_PHASES = {"B", "E", "i"}


def fail(msg):
    print("FAIL: " + msg)
    return 1


def validate(doc, min_events):
    if not isinstance(doc, dict):
        return fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail("missing or non-list traceEvents")
    if len(events) < min_events:
        return fail("only %d event(s), expected >= %d"
                    % (len(events), min_events))

    stacks = {}     # (pid, tid) -> list of open span names
    last_ts = {}    # (pid, tid) -> last seen ts
    spans = 0
    for i, e in enumerate(events):
        where = "event %d" % i
        if not isinstance(e, dict):
            return fail(where + ": not an object")
        name = e.get("name")
        if not isinstance(name, str) or not name:
            return fail(where + ": missing name")
        if not isinstance(e.get("cat"), str):
            return fail(where + " (%s): missing cat" % name)
        ph = e.get("ph")
        if ph not in VALID_PHASES:
            return fail(where + " (%s): bad ph %r" % (name, ph))
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or not math.isfinite(ts) or ts < 0:
            return fail(where + " (%s): bad ts %r" % (name, ts))
        pid, tid = e.get("pid"), e.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            return fail(where + " (%s): bad pid/tid" % name)

        lane = (pid, tid)
        if ts < last_ts.get(lane, 0.0):
            return fail(where + " (%s): ts %s goes backwards in lane %s"
                        % (name, ts, lane))
        last_ts[lane] = ts
        stack = stacks.setdefault(lane, [])
        if ph == "B":
            stack.append(name)
            spans += 1
        elif ph == "E":
            if not stack:
                return fail(where + " (%s): E with no open B in lane %s"
                            % (name, lane))
            opened = stack.pop()
            if opened != name:
                return fail(where + ": E '%s' closes B '%s' in lane %s"
                            % (name, opened, lane))
    for lane, stack in stacks.items():
        if stack:
            return fail("lane %s ends with unclosed span(s): %s"
                        % (lane, ", ".join(stack)))

    print("ok: %d event(s), %d span(s), %d lane(s)"
          % (len(events), spans, len(stacks)))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="validate a stackroute chrome trace")
    parser.add_argument("trace", help="trace JSON file to validate")
    parser.add_argument("--sweep", metavar="BIN",
                        help="run this stackroute-sweep binary with "
                             "--trace TRACE first")
    parser.add_argument("--min-events", type=int, default=1)
    if "--" in argv:
        split = argv.index("--")
        argv, sweep_args = argv[:split], argv[split + 1:]
    else:
        sweep_args = ["--generate", "grid", "--demand", "0.5", "1.5", "4",
                      "--profile"]
    args = parser.parse_args(argv)

    if args.sweep:
        cmd = [args.sweep, "--trace", args.trace] + sweep_args
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if proc.returncode != 0:
            return fail("sweep run failed (exit %d): %s"
                        % (proc.returncode, " ".join(cmd)))

    try:
        with open(args.trace) as fh:
            doc = json.load(fh)
    except OSError as e:
        return fail("cannot read %s: %s" % (args.trace, e))
    except ValueError as e:
        return fail("%s is not valid JSON: %s" % (args.trace, e))
    return validate(doc, args.min_events)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""CLI tests for check_bench_regression.py (stdlib only, run by CTest/CI).

Every case drives the script as a subprocess, the way CI does, and checks
both the exit status and that failures are readable FAIL lines rather than
tracebacks — the regression this guards is a ZeroDivisionError crashing
the bench-perf gate on a zero or missing cpu_time entry.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")


def bench_json(entries, build_type="Release"):
    return {
        "context": {"stackroute_build_type": build_type},
        "benchmarks": [
            {"name": name, "cpu_time": cpu, "time_unit": "ms"}
            if cpu is not None else {"name": name, "time_unit": "ms"}
            for name, cpu in entries
        ],
    }


class CheckBenchRegressionTest(unittest.TestCase):
    def run_script(self, baseline, fresh, counters, extra=()):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            fresh_path = os.path.join(tmp, "fresh.json")
            with open(base_path, "w") as fh:
                json.dump(baseline, fh)
            with open(fresh_path, "w") as fh:
                json.dump(fresh, fh)
            proc = subprocess.run(
                [sys.executable, SCRIPT, base_path, fresh_path,
                 *counters, *extra],
                capture_output=True, text=True)
        return proc

    def assert_clean_fail(self, proc):
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("FAIL:", proc.stdout)
        self.assertNotIn("Traceback", proc.stderr)
        self.assertNotIn("Traceback", proc.stdout)

    def test_passes_on_equal_timings(self):
        doc = bench_json([("BM_A", 10.0)])
        proc = self.run_script(doc, doc, ["BM_A"])
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("ok: BM_A", proc.stdout)

    def test_flags_regression_beyond_threshold(self):
        base = bench_json([("BM_A", 10.0)])
        fresh = bench_json([("BM_A", 14.0)])
        proc = self.run_script(base, fresh, ["BM_A"])
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REGRESSION", proc.stdout)

    def test_calibration_rescales_away_machine_speed(self):
        base = bench_json([("BM_A", 10.0), ("BM_CAL", 5.0)])
        fresh = bench_json([("BM_A", 20.0), ("BM_CAL", 10.0)])  # 2x machine
        proc = self.run_script(base, fresh, ["BM_A"],
                               ["--calibrate", "BM_CAL"])
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_zero_baseline_cpu_time_is_clean_fail(self):
        base = bench_json([("BM_A", 0.0)])
        fresh = bench_json([("BM_A", 10.0)])
        self.assert_clean_fail(self.run_script(base, fresh, ["BM_A"]))

    def test_missing_cpu_time_is_clean_fail(self):
        base = bench_json([("BM_A", None)])
        fresh = bench_json([("BM_A", 10.0)])
        self.assert_clean_fail(self.run_script(base, fresh, ["BM_A"]))

    def test_zero_fresh_cpu_time_is_clean_fail(self):
        # A zero *fresh* entry must not slip through as a 0.00x "ok" row —
        # it means the fresh JSON is truncated or corrupt, not infinitely
        # fast.
        base = bench_json([("BM_A", 10.0)])
        fresh = bench_json([("BM_A", 0.0)])
        self.assert_clean_fail(self.run_script(base, fresh, ["BM_A"]))

    def test_zero_calibration_counter_is_clean_fail(self):
        base = bench_json([("BM_A", 10.0), ("BM_CAL", 0.0)])
        fresh = bench_json([("BM_A", 10.0), ("BM_CAL", 5.0)])
        self.assert_clean_fail(self.run_script(base, fresh, ["BM_A"],
                                               ["--calibrate", "BM_CAL"]))

    def test_zero_fresh_calibration_counter_is_clean_fail(self):
        # A zero *fresh* calibration would turn the scale itself into 0 and
        # crash every later division — must be a clean FAIL too.
        base = bench_json([("BM_A", 10.0), ("BM_CAL", 5.0)])
        fresh = bench_json([("BM_A", 10.0), ("BM_CAL", 0.0)])
        self.assert_clean_fail(self.run_script(base, fresh, ["BM_A"],
                                               ["--calibrate", "BM_CAL"]))

    def test_missing_counter_is_clean_fail(self):
        base = bench_json([("BM_A", 10.0)])
        fresh = bench_json([("BM_B", 10.0)])
        self.assert_clean_fail(self.run_script(base, fresh, ["BM_A"]))

    def test_non_release_build_is_clean_fail(self):
        base = bench_json([("BM_A", 10.0)])
        fresh = bench_json([("BM_A", 10.0)], build_type="Debug")
        self.assert_clean_fail(self.run_script(base, fresh, ["BM_A"]))


if __name__ == "__main__":
    unittest.main()

// stackroute-serve: line-delimited JSON transport over the engine layer.
// Reads one request object per line, serves it through a resident
// engine::Engine, and writes one response object per line. Three modes:
//
//   stackroute-serve                       # serve stdin until EOF
//   stackroute-serve --replay requests.ldjson
//   stackroute-serve --socket /tmp/sr.sock # serve N concurrent clients
//
// stdin/replay serve one client with *blocking* admission, so their
// output is the sequential transport's, byte for byte. --socket accepts
// up to --max-clients Unix-domain connections multiplexed onto one
// engine by a shared worker pool (see serve/frontend.h) under admission
// control: full queues shed requests with a typed "overloaded" error
// instead of growing, slow readers are backpressured through bounded
// write buffers, and a disconnected client's pending work is cancelled
// without poisoning the engine. SIGINT/SIGTERM drain in-flight work,
// refuse new requests with a typed error, flush the stderr summary and
// exit under the normal contract (a second signal force-kills).
//
// Request fields (unknown keys are rejected — typos are errors here):
//   op            "equilibrium" | "optimum" | "mop" | "strategy" | "close"
//   id            number, echoed verbatim in the response (default 0)
//   session       number; requests sharing a session id warm-start each
//                 other (0 / absent = sessionless pooled workspace);
//                 "close" drops the session and its warm state. Session
//                 ids are per connection. At most 256 sessions may be
//                 open at once per client — beyond that, new session ids
//                 are per-line errors until some close.
//   instance_file path to a .links/.net text or TNTP instance
//   generate      generator family name (see stackroute-sweep
//                 --list-generators), with optional size / gen_seed
//   instance      inline serialized instance text (io/serialize format)
//   demand        demand override (scaled proportionally on networks)
//   alpha         Leader fraction for op=strategy (scale/llf)
//   strategy      "aloof" | "scale" | "llf" (op=strategy, default aloof)
//   backend       "pe" | "fw" | "bush" equilibrium backend on networks
//                 (default: the server's --backend flag, itself pe)
//   method        legacy spelling of "backend" ("path" means pe); when a
//                 request carries both, backend wins
//   deadline_ms   per-request wall-clock budget
//   max_iters     per-request iteration budget
//
// Responses: {"id":..,"ok":true,"kind":..,"status":..,"cost":..,...} with
// non-finite fields omitted; a malformed request yields {"id":0,"ok":
// false,"error":"line N: ..."} and the stream continues; a shed or
// refused request additionally carries "status":"overloaded". Lines
// longer than --max-line-bytes are discarded with a per-line error (the
// JSON parser separately caps nesting depth). The stderr summary
// (suppress with --quiet) reports counts, warm hit rate, table cache
// hits, p50/p99 latency, admission-control counters and the engine's
// byte accounting. Exit status mirrors stackroute-sweep: 0 = all
// requests ok and converged; 1 = usage or transport error; 2 = served to
// EOF but some responses failed or were degraded.
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stackroute/engine/engine.h"
#include "stackroute/obs/profile.h"
#include "stackroute/obs/timing.h"
#include "stackroute/serve/frontend.h"
#include "stackroute/serve/protocol.h"
#include "stackroute/util/error.h"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: stackroute-serve [options]\n"
        "  --replay FILE        read requests from FILE instead of stdin\n"
        "  --socket PATH        serve concurrent clients on a Unix socket\n"
        "  --workers N          solver worker threads (default 4)\n"
        "  --max-clients N      concurrent socket connections (default 64)\n"
        "  --max-queue N        global queued-request bound (default 256)\n"
        "  --max-client-queue N per-client queued-request bound (default "
        "16)\n"
        "  --write-buffer-bytes N  per-client response buffer bound\n"
        "                       (default 1048576)\n"
        "  --max-line-bytes N   request-line length cap (default 1048576)\n"
        "  --table-budget-mb N  compiled-table cache byte budget (0 = "
        "off)\n"
        "  --session-budget-mb N  session/workspace byte budget (0 = off)\n"
        "  --backend NAME       default equilibrium backend for requests\n"
        "                       that set neither \"backend\" nor \"method\":\n"
        "                       pe (default) | fw | bush\n"
        "  --quiet              suppress the stderr run summary\n"
        "  --help               show this message\n"
        "Serves line-delimited JSON requests (one object per line) against\n"
        "a resident solve engine; see the header of stackroute_serve.cpp\n"
        "or README.md for the request schema. stdin/replay admission\n"
        "blocks (sequential semantics); socket admission sheds overload\n"
        "with typed \"overloaded\" errors.\n"
        "Exit: 0 clean, 1 usage/transport error, 2 some requests failed\n"
        "or were degraded (their responses carry the detail).\n";
  return code;
}

struct ToolOptions {
  std::string replay;
  std::string socket_path;
  bool quiet = false;
  std::size_t workers = 4;
  std::size_t max_clients = 64;
  std::size_t max_queue = 256;
  std::size_t max_client_queue = 16;
  std::size_t write_buffer_bytes = 1 << 20;
  std::size_t max_line_bytes = 1 << 20;
  std::size_t table_budget_mb = 0;
  std::size_t session_budget_mb = 0;
  stackroute::EquilibriumBackend backend =
      stackroute::EquilibriumBackend::kPathEqualization;
};

stackroute::engine::EngineOptions engine_options(const ToolOptions& o) {
  stackroute::engine::EngineOptions opts;
  opts.table_cache_budget_bytes = o.table_budget_mb << 20;
  opts.session_budget_bytes = o.session_budget_mb << 20;
  return opts;
}

stackroute::serve::FrontEndOptions frontend_options(const ToolOptions& o) {
  stackroute::serve::FrontEndOptions opts;
  opts.workers = o.workers;
  opts.max_queue = o.max_queue;
  opts.max_client_queue = o.max_client_queue;
  opts.write_buffer_bytes = o.write_buffer_bytes;
  opts.show_bytes = o.table_budget_mb > 0 || o.session_budget_mb > 0;
  opts.default_backend = o.backend;
  return opts;
}

// ---- signal plumbing ----------------------------------------------------
// The handler writes one byte into a self-pipe the serving loops poll
// alongside their input fds, then re-arms the default disposition so a
// second signal force-kills a wedged drain. sigaction without SA_RESTART
// on purpose: blocked reads should fail with EINTR, not resume.

int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = write(g_signal_pipe[1], &byte, 1);
  signal(SIGINT, SIG_DFL);
  signal(SIGTERM, SIG_DFL);
}

bool install_signals() {
  if (pipe2(g_signal_pipe, O_CLOEXEC | O_NONBLOCK) != 0) return false;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  if (sigaction(SIGINT, &sa, nullptr) != 0) return false;
  if (sigaction(SIGTERM, &sa, nullptr) != 0) return false;
  signal(SIGPIPE, SIG_IGN);  // broken client pipes are per-client errors
  return true;
}

// ---- bounded line input -------------------------------------------------

/// Reads newline-delimited lines from an fd with a hard length cap: an
/// over-long line is discarded up to its newline and reported as one
/// kOversized event, so a hostile client cannot balloon server memory.
/// Optionally polls a wake fd (the signal self-pipe) alongside the input.
/// Mirrors std::getline otherwise: the delimiter is stripped, CR is kept,
/// a final unterminated line is still a line.
class FdLineReader {
 public:
  enum class Event { kLine, kOversized, kEof, kError, kSignal };

  FdLineReader(int fd, std::size_t max_line, int wake_fd)
      : fd_(fd), max_line_(max_line), wake_fd_(wake_fd) {}

  Event next(std::string* line) {
    line->clear();
    for (;;) {
      const std::size_t nl = buf_.find('\n', scan_);
      if (nl != std::string::npos) {
        if (skipping_ || nl > max_line_) {
          // Over-long even though its newline is already buffered (one
          // read can deliver many lines): same kOversized as the
          // accumulate-then-skip path.
          buf_.erase(0, nl + 1);
          scan_ = 0;
          skipping_ = false;
          return Event::kOversized;
        }
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        scan_ = 0;
        return Event::kLine;
      }
      scan_ = buf_.size();
      if (!skipping_ && buf_.size() > max_line_) {
        buf_.clear();
        scan_ = 0;
        skipping_ = true;
      }
      if (eof_) {
        if (skipping_) {
          skipping_ = false;
          return Event::kOversized;
        }
        if (!buf_.empty()) {
          *line = std::move(buf_);
          buf_.clear();
          scan_ = 0;
          return Event::kLine;  // mid-line EOF: the partial is a line
        }
        return Event::kEof;
      }
      if (wake_fd_ >= 0) {
        struct pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fd_, POLLIN, 0}};
        const int rc = poll(fds, 2, -1);
        if (rc < 0) {
          if (errno == EINTR) continue;
          return Event::kError;
        }
        if (fds[1].revents != 0) {
          char drain[16];
          while (read(wake_fd_, drain, sizeof(drain)) > 0) {
          }
          return Event::kSignal;
        }
        if (fds[0].revents == 0) continue;
      }
      char tmp[4096];
      const ssize_t n = read(fd_, tmp, sizeof(tmp));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Event::kError;
      }
      if (n == 0) {
        eof_ = true;
        continue;
      }
      if (skipping_) {
        const char* p =
            static_cast<const char*>(std::memchr(tmp, '\n', static_cast<std::size_t>(n)));
        if (p != nullptr) {
          buf_.assign(p + 1, static_cast<std::size_t>(tmp + n - (p + 1)));
          scan_ = 0;
          skipping_ = false;
          return Event::kOversized;
        }
        continue;  // still inside the oversized line: discard
      }
      buf_.append(tmp, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::size_t max_line_;
  int wake_fd_;
  std::string buf_;
  std::size_t scan_ = 0;
  bool skipping_ = false;
  bool eof_ = false;
};

bool blank_line(const std::string& text) {
  return text.find_first_not_of(" \t\r") == std::string::npos;
}

std::string oversized_message(const ToolOptions& o) {
  return "request line exceeds " + std::to_string(o.max_line_bytes) +
         " bytes";
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE / send-timeout: the client is gone or stuck
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// ---- summary + exit contract --------------------------------------------

void print_summary(const stackroute::serve::FrontEndStats& tally,
                   const stackroute::engine::EngineStats& stats,
                   double total_ms, std::uint64_t conn_refused) {
  std::ostringstream os;
  os << "serve: " << tally.requests << " requests (" << tally.errors
     << " failed, " << tally.degraded << " degraded) in " << total_ms
     << " ms";
  if (total_ms > 0 && tally.requests > 0) {
    os << ", "
       << (1000.0 * static_cast<double>(tally.requests) / total_ms)
       << " req/s";
  }
  os << "\nwarm: " << stats.warm_hits << "/" << stats.warm_attempts
     << " hits; table cache: " << stats.table_cache_hits << " hits / "
     << stats.table_cache_misses << " misses; sessions: "
     << stats.sessions_opened << " opened, " << stats.sessions_closed
     << " closed";
  if (!tally.millis.empty()) {
    os << "\nlatency ms: "
       << stackroute::obs::QuantileSummary::of(tally.millis).to_string();
  }
  os << "\nadmission: " << tally.shed << " shed, "
     << (tally.refused + conn_refused) << " refused, "
     << tally.cancelled_lines + stats.cancelled << " cancelled, peak queue "
     << tally.peak_queue;
  os << "\nmemory: table cache " << stats.table_cache_bytes << " B ("
     << stats.table_cache_evictions << " evicted), sessions "
     << stats.session_bytes << " B (" << stats.session_sheds
     << " sheds), peak " << stats.peak_bytes << " B";
  std::cerr << os.str() << "\n";
}

int exit_code(const stackroute::serve::FrontEndStats& tally) {
  return (tally.errors > 0 || tally.degraded > 0) ? 2 : 0;
}

// ---- single-client (stdin / replay) mode --------------------------------

int run_single(int in_fd, const ToolOptions& o) {
  stackroute::engine::Engine engine(engine_options(o));
  stackroute::serve::FrontEnd fe(engine, frontend_options(o));
  const std::uint64_t cid =
      fe.add_client(stackroute::serve::Admission::kBlock);
  stackroute::obs::Timer wall;

  std::thread writer([&fe, cid] {
    std::string line;
    while (fe.next_response(cid, &line)) {
      line.push_back('\n');
      if (std::fwrite(line.data(), 1, line.size(), stdout) != line.size()) {
        fe.abort_client(cid);
        break;
      }
      std::fflush(stdout);
    }
  });

  FdLineReader reader(in_fd, o.max_line_bytes, g_signal_pipe[0]);
  std::string text;
  std::size_t line_no = 0;
  bool aborted = false;
  for (bool reading = true; reading;) {
    switch (reader.next(&text)) {
      case FdLineReader::Event::kLine:
        ++line_no;
        // Blank lines are harmless separators, not requests.
        if (!blank_line(text)) fe.submit_line(cid, std::move(text), line_no);
        break;
      case FdLineReader::Event::kOversized:
        ++line_no;
        fe.submit_error(cid, line_no, oversized_message(o));
        break;
      case FdLineReader::Event::kSignal:
        // Drain what is queued, refuse what still arrives (typed), keep
        // consuming input so the writer can deliver the refusals.
        fe.begin_shutdown();
        break;
      case FdLineReader::Event::kEof:
        reading = false;
        break;
      case FdLineReader::Event::kError:
        aborted = true;
        reading = false;
        break;
    }
  }
  if (aborted) {
    fe.abort_client(cid);
  } else {
    fe.finish_client(cid);
  }
  writer.join();
  fe.drain();

  const double total_ms = wall.milliseconds();
  const stackroute::serve::FrontEndStats tally = fe.stats();
  if (!o.quiet) print_summary(tally, engine.stats(), total_ms, 0);
  return aborted ? 1 : exit_code(tally);
}

// ---- socket mode --------------------------------------------------------

void handle_connection(int fd, std::uint64_t cid,
                       stackroute::serve::FrontEnd& fe,
                       const ToolOptions& o) {
  std::thread writer([&fe, fd, cid] {
    std::string line;
    while (fe.next_response(cid, &line)) {
      line.push_back('\n');
      if (!write_all(fd, line)) {
        fe.abort_client(cid);
        break;
      }
    }
    shutdown(fd, SHUT_WR);
  });

  FdLineReader reader(fd, o.max_line_bytes, /*wake_fd=*/-1);
  std::string text;
  std::size_t line_no = 0;
  bool clean = false;
  for (bool reading = true; reading;) {
    const FdLineReader::Event ev = reader.next(&text);
    switch (ev) {
      case FdLineReader::Event::kLine:
        ++line_no;
        if (!blank_line(text)) fe.submit_line(cid, std::move(text), line_no);
        break;
      case FdLineReader::Event::kOversized:
        ++line_no;
        fe.submit_error(cid, line_no, oversized_message(o));
        break;
      default:  // kEof is a clean goodbye, anything else a drop
        clean = ev == FdLineReader::Event::kEof;
        reading = false;
        break;
    }
  }
  if (clean) {
    fe.finish_client(cid);
  } else {
    fe.abort_client(cid);
  }
  writer.join();
  close(fd);
  fe.remove_client(cid);
}

int run_socket(const ToolOptions& o) {
  stackroute::engine::Engine engine(engine_options(o));
  stackroute::serve::FrontEnd fe(engine, frontend_options(o));

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (o.socket_path.size() >= sizeof(addr.sun_path)) {
    std::cerr << "socket path too long: " << o.socket_path << "\n";
    return 1;
  }
  std::memcpy(addr.sun_path, o.socket_path.c_str(), o.socket_path.size());
  const int listen_fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) {
    std::cerr << "socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  unlink(o.socket_path.c_str());  // replace a stale socket file
  if (bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd, 128) != 0) {
    std::cerr << "cannot listen on " << o.socket_path << ": "
              << std::strerror(errno) << "\n";
    close(listen_fd);
    return 1;
  }
  if (!o.quiet) std::cerr << "listening on " << o.socket_path << "\n";

  stackroute::obs::Timer wall;
  std::mutex conn_mu;
  std::map<std::uint64_t, int> conn_fds;       // live connections, for wakeup
  std::map<std::uint64_t, std::thread> conn_threads;
  std::vector<std::uint64_t> finished;         // cids ready to reap
  std::atomic<std::size_t> active{0};
  std::uint64_t conn_refused = 0;

  for (;;) {
    {
      // Reap connection threads that announced completion, so a
      // long-running server does not accumulate joinable threads.
      std::vector<std::uint64_t> reap;
      {
        const std::lock_guard<std::mutex> lock(conn_mu);
        reap.swap(finished);
      }
      for (const std::uint64_t cid : reap) {
        const auto it = conn_threads.find(cid);
        if (it != conn_threads.end()) {
          it->second.join();
          conn_threads.erase(it);
        }
      }
    }
    struct pollfd fds[2] = {{listen_fd, POLLIN, 0},
                            {g_signal_pipe[0], POLLIN, 0}};
    const int rc = poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // SIGINT/SIGTERM: drain and exit
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    // A bounded send timeout keeps a stuck reader from wedging the
    // writer thread (and with it, shutdown) forever: the blocked write
    // fails and the client is aborted.
    struct timeval tv = {10, 0};
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    if (active.load() >= o.max_clients) {
      ++conn_refused;
      write_all(fd,
                "{\"id\":0,\"ok\":false,\"error\":\"too many clients (cap " +
                    std::to_string(o.max_clients) +
                    ")\",\"status\":\"overloaded\"}\n");
      close(fd);
      continue;
    }
    ++active;
    const std::uint64_t cid =
        fe.add_client(stackroute::serve::Admission::kShed);
    {
      const std::lock_guard<std::mutex> lock(conn_mu);
      conn_fds[cid] = fd;
    }
    std::thread t([&fe, &o, &conn_mu, &conn_fds, &finished, &active, fd,
                   cid] {
      handle_connection(fd, cid, fe, o);
      const std::lock_guard<std::mutex> lock(conn_mu);
      conn_fds.erase(cid);
      finished.push_back(cid);
      --active;
    });
    conn_threads.emplace(cid, std::move(t));
  }

  close(listen_fd);
  fe.begin_shutdown();
  {
    // Wake every connection reader with EOF; their queued work drains,
    // their writers flush, their threads exit.
    const std::lock_guard<std::mutex> lock(conn_mu);
    for (const auto& [cid, fd] : conn_fds) shutdown(fd, SHUT_RD);
  }
  for (auto& [cid, t] : conn_threads) t.join();
  fe.drain();

  const double total_ms = wall.milliseconds();
  const stackroute::serve::FrontEndStats tally = fe.stats();
  if (!o.quiet) print_summary(tally, engine.stats(), total_ms, conn_refused);
  unlink(o.socket_path.c_str());
  return exit_code(tally);
}

// ---- argument parsing ---------------------------------------------------

bool parse_count(const char* text, std::size_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ToolOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs an argument\n";
        return nullptr;
      }
      return argv[++i];
    };
    const auto count_flag = [&](const char* flag,
                                std::size_t* out) -> bool {
      const char* v = value(flag);
      if (v == nullptr || !parse_count(v, out)) {
        if (v != nullptr) {
          std::cerr << flag << " needs a non-negative integer, got '" << v
                    << "'\n";
        }
        return false;
      }
      return true;
    };
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--quiet") {
      o.quiet = true;
    } else if (arg == "--replay") {
      const char* v = value("--replay");
      if (v == nullptr) return usage(std::cerr, 1);
      o.replay = v;
    } else if (arg == "--socket") {
      const char* v = value("--socket");
      if (v == nullptr) return usage(std::cerr, 1);
      o.socket_path = v;
    } else if (arg == "--workers") {
      if (!count_flag("--workers", &o.workers)) return usage(std::cerr, 1);
      if (o.workers == 0) o.workers = 1;
    } else if (arg == "--max-clients") {
      if (!count_flag("--max-clients", &o.max_clients)) {
        return usage(std::cerr, 1);
      }
    } else if (arg == "--max-queue") {
      if (!count_flag("--max-queue", &o.max_queue)) return usage(std::cerr, 1);
    } else if (arg == "--max-client-queue") {
      if (!count_flag("--max-client-queue", &o.max_client_queue)) {
        return usage(std::cerr, 1);
      }
    } else if (arg == "--write-buffer-bytes") {
      if (!count_flag("--write-buffer-bytes", &o.write_buffer_bytes)) {
        return usage(std::cerr, 1);
      }
    } else if (arg == "--max-line-bytes") {
      if (!count_flag("--max-line-bytes", &o.max_line_bytes)) {
        return usage(std::cerr, 1);
      }
    } else if (arg == "--table-budget-mb") {
      if (!count_flag("--table-budget-mb", &o.table_budget_mb)) {
        return usage(std::cerr, 1);
      }
    } else if (arg == "--session-budget-mb") {
      if (!count_flag("--session-budget-mb", &o.session_budget_mb)) {
        return usage(std::cerr, 1);
      }
    } else if (arg == "--backend") {
      const char* v = value("--backend");
      if (v == nullptr) return usage(std::cerr, 1);
      try {
        o.backend = stackroute::parse_equilibrium_backend(v);
      } catch (const std::exception& e) {
        std::cerr << "--backend: " << e.what() << "\n";
        return usage(std::cerr, 1);
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(std::cerr, 1);
    }
  }
  if (!o.replay.empty() && !o.socket_path.empty()) {
    std::cerr << "--replay and --socket are mutually exclusive\n";
    return usage(std::cerr, 1);
  }

  if (!install_signals()) {
    std::cerr << "cannot install signal handlers: " << std::strerror(errno)
              << "\n";
    return 1;
  }

  try {
    if (!o.socket_path.empty()) return run_socket(o);
    if (!o.replay.empty()) {
      const int fd = open(o.replay.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) {
        std::cerr << "cannot open replay file: " << o.replay << "\n";
        return 1;
      }
      const int rc = run_single(fd, o);
      close(fd);
      return rc;
    }
    return run_single(STDIN_FILENO, o);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// stackroute-serve: line-delimited JSON transport over the engine layer.
// Reads one request object per line from stdin (or a replay file), serves
// it through a resident engine::Engine, and writes one response object per
// line to stdout. Sessions persist across requests, so a client streaming
// e.g. a demand ramp into one session gets warm-started solves and a
// compiled-latency-table cache for free.
//
//   stackroute-serve                       # serve stdin until EOF
//   stackroute-serve --replay requests.ldjson
//   echo '{"op":"mop","generate":"grid-bpr","demand":2}' | stackroute-serve
//
// Request fields (unknown keys are rejected — typos are errors here):
//   op            "equilibrium" | "optimum" | "mop" | "strategy" | "close"
//   id            number, echoed verbatim in the response (default 0)
//   session       number; requests sharing a session id warm-start each
//                 other (0 / absent = sessionless pooled workspace);
//                 "close" drops the session and its warm state. At most
//                 256 sessions may be open at once — beyond that, new
//                 session ids are per-line errors until some close.
//   instance_file path to a .links/.net text or TNTP instance
//   generate      generator family name (see stackroute-sweep
//                 --list-generators), with optional size / gen_seed
//   instance      inline serialized instance text (io/serialize format)
//   demand        demand override (scaled proportionally on networks)
//   alpha         Leader fraction for op=strategy (scale/llf)
//   strategy      "aloof" | "scale" | "llf" (op=strategy, default aloof)
//   method        "pe" | "fw" equilibrium solver on networks (default pe)
//   deadline_ms   per-request wall-clock budget
//   max_iters     per-request iteration budget
//
// Responses: {"id":..,"ok":true,"kind":..,"status":..,"cost":..,...} with
// non-finite fields omitted; a malformed request yields {"id":0,"ok":
// false,"error":"line N: ..."} and the stream continues. The stderr
// summary (suppress with --quiet) reports counts, warm hit rate, table
// cache hits and p50/p99 latency. Exit status mirrors stackroute-sweep:
// 0 = all requests ok and converged; 1 = usage or transport error;
// 2 = served to EOF but some responses failed or were degraded.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "stackroute/engine/engine.h"
#include "stackroute/gen/registry.h"
#include "stackroute/io/json.h"
#include "stackroute/obs/profile.h"
#include "stackroute/obs/timing.h"
#include "stackroute/sweep/scenario.h"
#include "stackroute/util/error.h"

namespace {

using stackroute::io::JsonParseError;
using stackroute::io::JsonValue;

int usage(std::ostream& os, int code) {
  os << "usage: stackroute-serve [options]\n"
        "  --replay FILE  read requests from FILE instead of stdin\n"
        "  --quiet        suppress the stderr run summary\n"
        "  --help         show this message\n"
        "Serves line-delimited JSON requests (one object per line) against\n"
        "a resident solve engine; see the header of stackroute_serve.cpp\n"
        "or README.md for the request schema.\n"
        "Exit: 0 clean, 1 usage/transport error, 2 some requests failed\n"
        "or were degraded (their responses carry the detail).\n";
  return code;
}

stackroute::engine::StrategyKind parse_strategy(const std::string& name) {
  using stackroute::engine::StrategyKind;
  if (name == "aloof") return StrategyKind::kAloof;
  if (name == "scale") return StrategyKind::kScale;
  if (name == "llf") return StrategyKind::kLlf;
  throw stackroute::Error("unknown strategy '" + name +
                          "' (expected aloof, scale or llf)");
}

stackroute::engine::EquilibriumMethod parse_method(const std::string& name) {
  using stackroute::engine::EquilibriumMethod;
  if (name == "pe" || name == "path") return EquilibriumMethod::kPathEqualization;
  if (name == "fw" || name == "frank-wolfe") return EquilibriumMethod::kFrankWolfe;
  throw stackroute::Error("unknown method '" + name +
                          "' (expected pe or fw)");
}

/// Field accessors that throw with the field name in the message, so the
/// transport's per-line errors read "field 'alpha': expected number, ...".
double number_field(const JsonValue& v, const char* key) {
  try {
    return v.as_number();
  } catch (const stackroute::Error& e) {
    throw stackroute::Error(std::string("field '") + key + "': " + e.what());
  }
}

std::string string_field(const JsonValue& v, const char* key) {
  try {
    return v.as_string();
  } catch (const stackroute::Error& e) {
    throw stackroute::Error(std::string("field '") + key + "': " + e.what());
  }
}

/// JSON numbers arrive as doubles, and casting one that is out of the
/// target type's range (or NaN) to an integer type is undefined behavior
/// — a hostile {"id":1e300} must become a per-line field error, not UB.
/// 2^53 is the largest range a JSON double covers exactly, and is ample
/// for every integer field of the schema.
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

double integer_field(const JsonValue& v, const char* key, double lo,
                     double hi) {
  const double d = number_field(v, key);
  if (!(d >= lo && d <= hi) || d != std::floor(d)) {
    std::ostringstream os;
    os << "field '" << key << "': expected an integer in [" << lo << ", "
       << hi << "]";
    throw stackroute::Error(os.str());
  }
  return d;
}

std::uint64_t id_field(const JsonValue& v, const char* key) {
  return static_cast<std::uint64_t>(
      integer_field(v, key, 0.0, kMaxExactInt));
}

int size_field(const JsonValue& v, const char* key) {
  return static_cast<int>(integer_field(v, key, 0.0, 2147483647.0));
}

/// The long-lived transport state: the engine, the client-id -> engine-id
/// session map, and a prototype cache so a stream of requests against the
/// same file/generator parses or generates the instance once. Both maps
/// are bounded — a resident process fed varied inline instances or ever
/// fresh session ids must not grow without limit: prototypes are an LRU
/// (like the engine's compiled-table cache), and opening more than
/// kMaxClientSessions concurrent sessions is a per-line error telling the
/// client to close some.
constexpr std::size_t kPrototypeCacheCapacity = 64;
constexpr std::size_t kMaxClientSessions = 256;

struct Serve {
  stackroute::engine::Engine engine;
  std::map<std::uint64_t, std::uint64_t> sessions;  // client id -> engine id
  struct Prototype {
    stackroute::engine::Instance inst;
    std::uint64_t last_use = 0;
  };
  std::map<std::string, Prototype> prototypes;
  std::uint64_t prototype_clock = 0;

  const stackroute::engine::Instance& prototype(const std::string& key,
                                                const JsonValue& req) {
    auto it = prototypes.find(key);
    if (it == prototypes.end()) {
      if (prototypes.size() >= kPrototypeCacheCapacity) {
        prototypes.erase(std::min_element(
            prototypes.begin(), prototypes.end(),
            [](const auto& a, const auto& b) {
              return a.second.last_use < b.second.last_use;
            }));
      }
      it = prototypes.emplace(key, Prototype{build_instance(req), 0}).first;
    }
    it->second.last_use = ++prototype_clock;
    return it->second.inst;
  }

  static stackroute::engine::Instance build_instance(const JsonValue& req) {
    if (const JsonValue* file = req.find("instance_file")) {
      return stackroute::sweep::load_instance_file(
          string_field(*file, "instance_file"));
    }
    if (const JsonValue* text = req.find("instance")) {
      return stackroute::sweep::load_instance_text(
          string_field(*text, "instance"));
    }
    const JsonValue* fam = req.find("generate");
    const std::string family = string_field(*fam, "generate");
    int size = 0;
    std::uint64_t seed = 1;
    if (const JsonValue* s = req.find("size")) {
      size = size_field(*s, "size");
    }
    if (const JsonValue* s = req.find("gen_seed")) seed = id_field(*s, "gen_seed");
    return stackroute::gen::generate_sized(family, size, 1.0, seed);
  }
};

/// One key per distinct instance source, so the prototype cache can serve
/// repeated requests without re-reading files or re-generating.
std::string source_key(const JsonValue& req) {
  if (const JsonValue* file = req.find("instance_file")) {
    return "file:" + string_field(*file, "instance_file");
  }
  if (const JsonValue* text = req.find("instance")) {
    return "text:" + string_field(*text, "instance");
  }
  if (const JsonValue* fam = req.find("generate")) {
    std::string key = "gen:" + string_field(*fam, "generate");
    if (const JsonValue* s = req.find("size")) {
      key += ":size=" + std::to_string(size_field(*s, "size"));
    }
    if (const JsonValue* s = req.find("gen_seed")) {
      key += ":seed=" + std::to_string(id_field(*s, "gen_seed"));
    }
    return key;
  }
  throw stackroute::Error(
      "request needs an instance source: one of instance_file, generate "
      "or instance");
}

const char* const kKnownKeys[] = {
    "op",     "id",       "session",  "instance_file", "generate",
    "size",   "gen_seed", "instance", "demand",        "alpha",
    "strategy", "method", "deadline_ms", "max_iters",
};

void reject_unknown_keys(const JsonValue& req) {
  for (const auto& [key, value] : req.as_object()) {
    bool known = false;
    for (const char* k : kKnownKeys) {
      if (key == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw stackroute::Error("unknown request field '" + key + "'");
    }
  }
}

std::string response_json(const stackroute::engine::SolveResponse& resp) {
  using stackroute::io::json_escape;
  using stackroute::io::json_number;
  std::ostringstream os;
  os << "{\"id\":" << resp.id << ",\"ok\":" << (resp.ok ? "true" : "false");
  if (!resp.ok) {
    os << ",\"error\":\"" << json_escape(resp.error) << "\"}";
    return os.str();
  }
  os << ",\"kind\":\"" << to_string(resp.kind) << "\""
     << ",\"status\":\"" << to_string(resp.status) << "\"";
  // Non-finite fields are omitted, not serialized: NaN means "not
  // computed", and a degraded solve can leave an Inf (e.g. ratio against
  // a zero optimum cost) — json_number would reject either and turn an
  // otherwise valid response into a line error.
  const auto field = [&os](const char* name, double v) {
    if (std::isfinite(v)) os << ",\"" << name << "\":" << json_number(v);
  };
  field("cost", resp.cost);
  field("beta", resp.beta);
  field("optimum_cost", resp.optimum_cost);
  field("ratio", resp.ratio);
  os << ",\"warm\":" << (resp.warm ? "true" : "false")
     << ",\"millis\":" << json_number(resp.millis) << "}";
  return os.str();
}

std::string error_json(std::uint64_t id, std::size_t line,
                       const std::string& message) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"ok\":false,\"error\":\"line " << line << ": "
     << stackroute::io::json_escape(message) << "\"}";
  return os.str();
}

struct ServeTally {
  std::size_t requests = 0;
  std::size_t errors = 0;
  std::size_t degraded = 0;
  std::vector<double> millis;
};

/// Serves one request line; returns the response line. Never throws:
/// every failure becomes an ok=false response tagged with `line`.
std::string serve_line(Serve& sv, const std::string& text, std::size_t line,
                       ServeTally& tally) {
  ++tally.requests;
  std::uint64_t id = 0;
  try {
    JsonValue req;
    try {
      req = JsonValue::parse(text);
    } catch (const JsonParseError& e) {
      throw stackroute::Error(e.message + " (byte " +
                              std::to_string(e.offset) + ")");
    }
    if (!req.is_object()) throw stackroute::Error("request must be an object");
    if (const JsonValue* v = req.find("id")) id = id_field(*v, "id");
    reject_unknown_keys(req);

    const JsonValue* opv = req.find("op");
    if (!opv) throw stackroute::Error("missing required field 'op'");
    const std::string op = string_field(*opv, "op");

    std::uint64_t client_session = 0;
    if (const JsonValue* v = req.find("session")) {
      client_session = id_field(*v, "session");
    }

    if (op == "close") {
      auto it = sv.sessions.find(client_session);
      const bool known = it != sv.sessions.end();
      if (known) {
        sv.engine.close_session(it->second);
        sv.sessions.erase(it);
      }
      std::ostringstream os;
      os << "{\"id\":" << id << ",\"ok\":" << (known ? "true" : "false");
      if (!known) {
        os << ",\"error\":\"line " << line << ": unknown session "
           << client_session << "\"";
        ++tally.errors;
      }
      os << "}";
      return os.str();
    }

    stackroute::engine::SolveRequest sreq;
    sreq.id = id;
    sreq.kind = stackroute::engine::parse_request_kind(op);
    if (client_session != 0) {
      auto it = sv.sessions.find(client_session);
      if (it == sv.sessions.end()) {
        if (sv.sessions.size() >= kMaxClientSessions) {
          throw stackroute::Error(
              "too many open sessions (cap " +
              std::to_string(kMaxClientSessions) +
              "): close unused sessions first");
        }
        it = sv.sessions.emplace(client_session, sv.engine.open_session())
                 .first;
      }
      sreq.session = it->second;
    }

    sreq.instance = sv.prototype(source_key(req), req);
    if (const JsonValue* v = req.find("demand")) {
      stackroute::sweep::override_demand(sreq.instance,
                                         number_field(*v, "demand"));
    }
    if (const JsonValue* v = req.find("alpha")) {
      sreq.alpha = number_field(*v, "alpha");
    }
    if (const JsonValue* v = req.find("strategy")) {
      sreq.strategy = parse_strategy(string_field(*v, "strategy"));
    }
    if (const JsonValue* v = req.find("method")) {
      sreq.method = parse_method(string_field(*v, "method"));
    }
    if (const JsonValue* v = req.find("deadline_ms")) {
      sreq.budget.deadline_ms = number_field(*v, "deadline_ms");
    }
    if (const JsonValue* v = req.find("max_iters")) {
      sreq.budget.max_iters = static_cast<long long>(
          integer_field(*v, "max_iters", 0.0, kMaxExactInt));
    }

    stackroute::engine::SolveResponse resp = sv.engine.solve(sreq);
    if (!resp.ok) {
      ++tally.errors;
      resp.error = "line " + std::to_string(line) + ": " + resp.error;
    } else if (!solve_ok(resp.status)) {
      ++tally.degraded;
    }
    tally.millis.push_back(resp.millis);
    return response_json(resp);
  } catch (const stackroute::Error& e) {
    ++tally.errors;
    return error_json(id, line, e.what());
  } catch (const std::exception& e) {
    ++tally.errors;
    return error_json(id, line, e.what());
  }
}

int serve_stream(std::istream& in, std::ostream& out, bool quiet) {
  Serve sv;
  ServeTally tally;
  stackroute::obs::Timer wall;
  std::string text;
  std::size_t line = 0;
  while (std::getline(in, text)) {
    ++line;
    // Blank lines are harmless separators, not requests.
    if (text.find_first_not_of(" \t\r") == std::string::npos) continue;
    out << serve_line(sv, text, line, tally) << '\n';
    out.flush();
  }
  const double total_ms = wall.milliseconds();

  if (!quiet) {
    const auto stats = sv.engine.stats();
    std::ostringstream os;
    os << "serve: " << tally.requests << " requests (" << tally.errors
       << " failed, " << tally.degraded << " degraded) in " << total_ms
       << " ms";
    if (total_ms > 0 && tally.requests > 0) {
      os << ", " << (1000.0 * static_cast<double>(tally.requests) / total_ms)
         << " req/s";
    }
    os << "\nwarm: " << stats.warm_hits << "/" << stats.warm_attempts
       << " hits; table cache: " << stats.table_cache_hits << " hits / "
       << stats.table_cache_misses << " misses; sessions: "
       << stats.sessions_opened << " opened, " << stats.sessions_closed
       << " closed";
    if (!tally.millis.empty()) {
      os << "\nlatency ms: "
         << stackroute::obs::QuantileSummary::of(tally.millis).to_string();
    }
    std::cerr << os.str() << "\n";
  }
  if (tally.errors > 0 || tally.degraded > 0) return 2;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string replay;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--replay") {
      if (i + 1 >= argc) {
        std::cerr << "--replay needs a file argument\n";
        return usage(std::cerr, 1);
      }
      replay = argv[++i];
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(std::cerr, 1);
    }
  }

  try {
    if (!replay.empty()) {
      std::ifstream in(replay);
      if (!in) {
        std::cerr << "cannot open replay file: " << replay << "\n";
        return 1;
      }
      return serve_stream(in, std::cout, quiet);
    }
    return serve_stream(std::cin, std::cout, quiet);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// stackroute-sweep: run a named scenario sweep, a file-backed demand
// sweep, or a generated-instance demand sweep across all cores and print
// the metric table.
//
//   stackroute-sweep --list-scenarios
//   stackroute-sweep --list-generators
//   stackroute-sweep --scenario grid-bpr
//   stackroute-sweep --scenario pigou-grid --threads 1 --format csv
//   stackroute-sweep --file examples/instances/fig4.links
//       --demand 0.5 3.0 11 --format json --out fig4_sweep.json
//   stackroute-sweep --file examples/instances/SiouxFalls_net.tntp
//       --demand 500 4000 8
//   stackroute-sweep --generate grid-bpr --size 6 --gen-seed 7
//   stackroute-sweep --generate grid --strategy llf --alpha 0 1 21
//
// The metric table is bitwise identical at any --threads value; timing
// lives in the summary line (written to stderr so --out files stay clean).
// Exit status: 0 = clean sweep; 1 = usage or runtime error; 2 = the sweep
// completed but some rows failed or were degraded (budget hit, numeric
// trouble) — the table was still written, check its status column.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "stackroute/gen/registry.h"
#include "stackroute/sweep/runner.h"
#include "stackroute/sweep/scenarios.h"
#include "stackroute/util/error.h"
#include "stackroute/util/fault.h"
#include "stackroute/util/parallel.h"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: stackroute-sweep [options]\n"
        "  --scenario NAME       builtin scenario to run (default pigou-grid)\n"
        "  --file PATH           sweep an instance file over demand instead\n"
        "                        (.links/.net text, or a TNTP *_net.tntp)\n"
        "  --generate NAME       sweep a generated instance over demand\n"
        "                        (NAME may be any unambiguous prefix of a\n"
        "                        generator family, e.g. 'grid')\n"
        "  --backend NAME        equilibrium backend for network Nash solves:\n"
        "                        pe (path equalization, default) | fw\n"
        "                        (Frank-Wolfe) | bush (origin-based bushes);\n"
        "                        reports the equilibrium metric columns and\n"
        "                        needs --file/--generate\n"
        "  --strategy NAME       aloof | scale | llf | optop: report the\n"
        "                        named Leader baseline's C(S+T)/C(O) column\n"
        "                        instead of the default metrics (needs\n"
        "                        --file/--generate)\n"
        "  --alpha LO HI COUNT   alpha axis for --strategy scale|llf\n"
        "                        (default 0 1 11; needs 0 <= LO < HI <= 1,\n"
        "                        COUNT >= 2); alpha is the warm axis, so\n"
        "                        chained points reuse the previous alpha's\n"
        "                        converged follower flow\n"
        "  --size N              generator size knob (0 = family default)\n"
        "  --gen-seed N          generator seed (default 1)\n"
        "  --demand LO HI COUNT  demand axis for --file/--generate\n"
        "                        (default 0.5 3.0 11; needs 0 < LO < HI,\n"
        "                        COUNT >= 2)\n"
        "  --seed N              base seed for per-task RNG derivation\n"
        "  --warm-start on|off   chain solves along the scenario's warm axis,\n"
        "                        reusing the neighboring point's converged\n"
        "                        state (default on; off = independent cold\n"
        "                        tasks, for A/B timing)\n"
        "  --threads N           worker threads (0 = all cores, 1 = serial;\n"
        "                        chains are the unit of parallelism)\n"
        "  --format FMT          md | csv | json (default md)\n"
        "  --out PATH            write the table to a file instead of stdout\n"
        "  --timing              include the diagnostic chain/wall-clock\n"
        "                        columns (and counter columns with --counters)\n"
        "  --counters            collect solver work counters: totals go to\n"
        "                        the stderr summary, per-task values to the\n"
        "                        --timing columns (never to the plain table)\n"
        "  --profile             print p50/p90/p99 profiles of task/chain wall\n"
        "                        times and counters to stderr (implies\n"
        "                        --counters)\n"
        "  --trace FILE          record per-chain solver span traces to FILE\n"
        "                        as chrome://tracing JSON (load via ui.perfetto\n"
        "                        .dev or chrome://tracing); a .jsonl suffix\n"
        "                        writes per-iteration convergence samples as\n"
        "                        JSON Lines instead\n"
        "  --deadline-ms X       per-task wall-clock solve budget in ms:\n"
        "                        overrunning solves return best-so-far flows\n"
        "                        and the row's status column says 'deadline'\n"
        "  --retries N           cold re-attempts for failed tasks before the\n"
        "                        failed row is recorded (default 1)\n"
        "  --inject SPEC         inject a deterministic fault (repeatable):\n"
        "                          fail:TASK[:TIMES]    task throws at start\n"
        "                          nan:TASK:CALL        NaN latency eval\n"
        "                          inf:TASK:CALL        +Inf latency eval\n"
        "                          metric:TASK:IDX[:TIMES]  metric throws\n"
        "                          demand:TASK:FACTOR   scale task demand\n"
        "  --list-scenarios      list builtin scenarios and exit\n"
        "                        (--list is a shorthand)\n"
        "  --list-generators     list generator families and knobs, exit\n"
        "  --help, -h            print this help and exit\n"
        "exit status: 0 clean; 1 usage/runtime error; 2 sweep completed\n"
        "with failed or degraded rows (see the status column)\n";
  return code;
}

struct Args {
  std::string scenario = "pigou-grid";
  bool scenario_given = false;
  std::string file;
  std::string generate;
  int gen_size = 0;
  bool gen_size_given = false;
  std::uint64_t gen_seed = 1;
  bool gen_seed_given = false;
  double demand_lo = 0.5, demand_hi = 3.0;
  int demand_count = 11;
  bool demand_given = false;
  std::string strategy;
  std::string backend;
  double alpha_lo = 0.0, alpha_hi = 1.0;
  int alpha_count = 11;
  bool alpha_given = false;
  std::uint64_t seed = 1;
  bool warm_start = true;
  int threads = 0;
  std::string format = "md";
  std::string out;
  bool timing = false;
  bool counters = false;
  bool profile = false;
  std::string trace;
  double deadline_ms = 0.0;
  int retries = 1;
  std::vector<std::string> inject;
  bool list = false;
  bool list_generators = false;
  bool help = false;
};

/// std::stoull quietly wraps "-1" to 2^64-1; a negated seed must be a
/// hard error, not a silently different reproducibility token.
std::uint64_t parse_u64(const std::string& s) {
  if (!s.empty() && s[0] == '-') throw std::invalid_argument("negative");
  return std::stoull(s);
}

bool parse_args(int argc, char** argv, Args& args) {
  auto need = [&](int i, int extra) { return i + extra < argc; };
  std::string current;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = current = argv[i];
      if (a == "--list" || a == "--list-scenarios") {
        args.list = true;
      } else if (a == "--list-generators") {
        args.list_generators = true;
      } else if (a == "--help" || a == "-h") {
        args.help = true;
      } else if (a == "--timing") {
        args.timing = true;
      } else if (a == "--counters") {
        args.counters = true;
      } else if (a == "--profile") {
        args.profile = true;
        args.counters = true;  // profiles are counter aggregates
      } else if (a == "--trace" && need(i, 1)) {
        args.trace = argv[++i];
      } else if (a == "--scenario" && need(i, 1)) {
        args.scenario = argv[++i];
        args.scenario_given = true;
      } else if (a == "--file" && need(i, 1)) {
        args.file = argv[++i];
      } else if (a == "--generate" && need(i, 1)) {
        args.generate = argv[++i];
      } else if (a == "--size" && need(i, 1)) {
        args.gen_size = std::stoi(argv[++i]);
        args.gen_size_given = true;
      } else if (a == "--gen-seed" && need(i, 1)) {
        args.gen_seed = parse_u64(argv[++i]);
        args.gen_seed_given = true;
      } else if (a == "--demand" && need(i, 3)) {
        args.demand_lo = std::stod(argv[++i]);
        args.demand_hi = std::stod(argv[++i]);
        args.demand_count = std::stoi(argv[++i]);
        args.demand_given = true;
      } else if (a == "--strategy" && need(i, 1)) {
        args.strategy = argv[++i];
      } else if (a == "--backend" && need(i, 1)) {
        args.backend = argv[++i];
      } else if (a == "--alpha" && need(i, 3)) {
        args.alpha_lo = std::stod(argv[++i]);
        args.alpha_hi = std::stod(argv[++i]);
        args.alpha_count = std::stoi(argv[++i]);
        args.alpha_given = true;
      } else if (a == "--seed" && need(i, 1)) {
        args.seed = parse_u64(argv[++i]);
      } else if (a == "--warm-start" && need(i, 1)) {
        const std::string v = argv[++i];
        if (v == "on") {
          args.warm_start = true;
        } else if (v == "off") {
          args.warm_start = false;
        } else {
          std::cerr << "bad value for --warm-start: " << v
                    << " (expected on or off)\n";
          return false;
        }
      } else if (a == "--deadline-ms" && need(i, 1)) {
        args.deadline_ms = std::stod(argv[++i]);
      } else if (a == "--retries" && need(i, 1)) {
        args.retries = std::stoi(argv[++i]);
      } else if (a == "--inject" && need(i, 1)) {
        args.inject.emplace_back(argv[++i]);
      } else if (a == "--threads" && need(i, 1)) {
        args.threads = std::stoi(argv[++i]);
      } else if (a == "--format" && need(i, 1)) {
        args.format = argv[++i];
      } else if (a == "--out" && need(i, 1)) {
        args.out = argv[++i];
      } else {
        std::cerr << "unknown or incomplete option: " << a << "\n";
        return false;
      }
    }
  } catch (const std::exception&) {  // std::stod/stoi on non-numeric input
    std::cerr << "bad numeric value for option: " << current << "\n";
    return false;
  }
  const bool generating = !args.generate.empty();
  if (args.scenario_given && !args.file.empty()) {
    std::cerr << "--scenario and --file are mutually exclusive\n";
    return false;
  }
  if (generating && (args.scenario_given || !args.file.empty())) {
    std::cerr << "--generate is mutually exclusive with --scenario/--file\n";
    return false;
  }
  if ((args.gen_size_given || args.gen_seed_given) && !generating) {
    std::cerr << "--size/--gen-seed only apply to --generate runs\n";
    return false;
  }
  if (args.gen_size_given && args.gen_size < 0) {
    std::cerr << "bad value for --size: " << args.gen_size
              << " (must be >= 0; 0 = family default)\n";
    return false;
  }
  if (args.demand_given && args.file.empty() && !generating) {
    std::cerr << "--demand only applies to --file/--generate sweeps\n";
    return false;
  }
  if (!args.strategy.empty()) {
    if (args.file.empty() && !generating) {
      std::cerr << "--strategy only applies to --file/--generate sweeps\n";
      return false;
    }
    if (args.strategy != "aloof" && args.strategy != "scale" &&
        args.strategy != "llf" && args.strategy != "optop") {
      std::cerr << "bad value for --strategy: " << args.strategy
                << " (expected aloof, scale, llf or optop)\n";
      return false;
    }
  }
  if (!args.backend.empty()) {
    if (args.file.empty() && args.generate.empty()) {
      std::cerr << "--backend only applies to --file/--generate sweeps\n";
      return false;
    }
    if (!args.strategy.empty()) {
      // Strategy baselines pin the follower solves to the induced-solver
      // path; offering --backend there would silently not take effect.
      std::cerr << "--backend and --strategy are mutually exclusive\n";
      return false;
    }
  }
  const bool alpha_swept =
      args.strategy == "scale" || args.strategy == "llf";
  if (args.alpha_given && !alpha_swept) {
    std::cerr << "--alpha only applies to --strategy scale|llf\n";
    return false;
  }
  if (args.alpha_given) {
    if (!(args.alpha_lo >= 0.0 && args.alpha_lo < args.alpha_hi &&
          args.alpha_hi <= 1.0)) {
      std::cerr << "bad --alpha range: need 0 <= LO < HI <= 1 (got LO="
                << args.alpha_lo << ", HI=" << args.alpha_hi << ")\n";
      return false;
    }
    if (args.alpha_count < 2) {
      std::cerr << "bad --alpha range: COUNT must be >= 2 (got "
                << args.alpha_count << ")\n";
      return false;
    }
  }
  if (args.demand_given) {
    // A hi < lo or single-point axis would silently sweep a degenerate
    // (or backwards) demand range; reject it up front.
    if (!(args.demand_lo > 0.0)) {
      std::cerr << "bad --demand range: LO must be > 0 (got "
                << args.demand_lo << ")\n";
      return false;
    }
    if (!(args.demand_hi > args.demand_lo)) {
      std::cerr << "bad --demand range: HI must be > LO (got LO="
                << args.demand_lo << ", HI=" << args.demand_hi << ")\n";
      return false;
    }
    if (args.demand_count < 2) {
      std::cerr << "bad --demand range: COUNT must be >= 2 (got "
                << args.demand_count << ")\n";
      return false;
    }
  }
  if (args.threads < 0) {
    std::cerr << "bad value for --threads: " << args.threads
              << " (must be >= 0; 0 = all cores)\n";
    return false;
  }
  if (args.deadline_ms < 0.0) {
    std::cerr << "bad value for --deadline-ms: " << args.deadline_ms
              << " (must be >= 0; 0 = no deadline)\n";
    return false;
  }
  if (args.retries < 0) {
    std::cerr << "bad value for --retries: " << args.retries
              << " (must be >= 0)\n";
    return false;
  }
  if (args.format != "md" && args.format != "csv" && args.format != "json") {
    std::cerr << "bad value for --format: " << args.format
              << " (expected md, csv or json)\n";
    return false;
  }
  return true;
}

/// Parses one --inject SPEC into `plan`. Returns false (with a stderr
/// message) on malformed specs — a usage error, not a runtime one.
bool parse_inject(const std::string& spec, stackroute::fault::FaultPlan& plan) {
  std::vector<std::string> parts;
  std::istringstream is(spec);
  std::string field;
  while (std::getline(is, field, ':')) parts.push_back(field);
  const auto fail = [&](const char* why) {
    std::cerr << "bad --inject spec '" << spec << "': " << why << "\n";
    return false;
  };
  if (parts.empty()) return fail("empty spec");
  try {
    const std::string& kind = parts[0];
    if (kind == "fail") {
      if (parts.size() < 2 || parts.size() > 3) {
        return fail("expected fail:TASK[:TIMES]");
      }
      plan.fail_task(std::stoul(parts[1]),
                     parts.size() == 3 ? std::stoi(parts[2]) : 1);
    } else if (kind == "nan" || kind == "inf") {
      if (parts.size() != 3) return fail("expected nan|inf:TASK:CALL");
      const auto task = std::stoul(parts[1]);
      const auto call = std::stoull(parts[2]);
      if (kind == "nan") {
        plan.nan_latency(task, call);
      } else {
        plan.inf_latency(task, call);
      }
    } else if (kind == "metric") {
      if (parts.size() < 3 || parts.size() > 4) {
        return fail("expected metric:TASK:INDEX[:TIMES]");
      }
      plan.throwing_metric(std::stoul(parts[1]), std::stoi(parts[2]),
                           parts.size() == 4 ? std::stoi(parts[3]) : 1);
    } else if (kind == "demand") {
      if (parts.size() != 3) return fail("expected demand:TASK:FACTOR");
      const double factor = std::stod(parts[2]);
      if (!(factor > 0.0)) return fail("FACTOR must be > 0");
      plan.scale_demand(std::stoul(parts[1]), factor);
    } else {
      return fail("unknown kind (expected fail, nan, inf, metric or demand)");
    }
  } catch (const std::exception&) {
    return fail("non-numeric field");
  }
  return true;
}

/// Exact generator-family name, or the unique family the given prefix
/// expands to. Unknown names pass through (gen::sized_spec raises the
/// canonical error listing every family); ambiguous prefixes are an error
/// naming the candidates.
std::string resolve_generator(const std::string& name) {
  std::vector<std::string> matches;
  for (const auto& info : stackroute::gen::generator_registry()) {
    if (info.name == name) return name;
    if (info.name.compare(0, name.size(), name) == 0) {
      matches.push_back(info.name);
    }
  }
  if (matches.size() == 1) return matches.front();
  if (matches.size() > 1) {
    std::string what = "ambiguous generator name '" + name + "' (matches:";
    for (const auto& m : matches) what += ' ' + m;
    throw stackroute::Error(what + ')');
  }
  return name;
}

/// The metric columns a --strategy run reports instead of the defaults.
std::vector<stackroute::sweep::Metric> strategy_cli_metrics(
    const std::string& strategy) {
  using namespace stackroute::sweep;
  if (strategy == "optop") {
    // The exact strategy: its ratio is 1 by Theorem 2.1; beta is the α it
    // needs — the row the baselines are measured against.
    return {metric_beta(), metric_optimum_cost(), metric_stackelberg_cost(),
            {"optop_ratio", [](TaskEval& e) {
               return e.stackelberg_cost() / e.optimum_cost();
             }}};
  }
  const StrategyKind kind = strategy == "aloof" ? StrategyKind::kAloof
                            : strategy == "scale" ? StrategyKind::kScale
                                                  : StrategyKind::kLlf;
  std::vector<Metric> metrics = {metric_beta(), metric_optimum_cost(),
                                 metric_strategy_ratio(kind)};
  if (kind != StrategyKind::kAloof) {
    metrics.push_back(metric_strategy_cost(kind));
  }
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stackroute;
  Args args;
  if (!parse_args(argc, argv, args)) return usage(std::cerr, 1);
  if (args.help) return usage(std::cout, 0);

  fault::FaultPlan faults;
  faults.set_seed(args.seed);
  for (const std::string& spec : args.inject) {
    if (!parse_inject(spec, faults)) return usage(std::cerr, 1);
  }

  if (args.list) {
    for (const auto& s : sweep::builtin_scenarios()) {
      std::cout << s.name << " — " << s.summary << "\n";
    }
    return 0;
  }
  if (args.list_generators) {
    for (const auto& info : gen::generator_registry()) {
      std::cout << info.name << " — " << info.summary << "\n";
      for (const auto& knob : info.knobs) {
        std::cout << "    " << knob.name << " (default " << knob.fallback
                  << "): " << knob.help << "\n";
      }
    }
    return 0;
  }

  // Spec building rejects bad CLI input (unknown scenario or generator
  // name, ambiguous prefix): those get the same usage footer as parse
  // errors, printed exactly once. Failures past this point are runtime
  // errors and do not.
  sweep::ScenarioSpec spec;
  try {
    if (!args.generate.empty() || !args.file.empty()) {
      const bool alpha_swept =
          args.strategy == "scale" || args.strategy == "llf";
      // A plain run sweeps demand by default; a --strategy run sweeps
      // alpha, adding the demand axis only when asked for explicitly.
      const bool demand_swept = args.strategy.empty() || args.demand_given;
      if (!args.generate.empty()) {
        const std::string family = resolve_generator(args.generate);
        spec.name = "gen:" + family;
        spec.description = "sweep over a generated " + family +
                           " instance (seed " + std::to_string(args.gen_seed) +
                           ")";
        spec.factory = sweep::generated_instance_source(
            gen::sized_spec(family, args.gen_size), args.gen_seed);
      } else {
        spec.name = "file:" + args.file;
        spec.description = "sweep over " + args.file;
        spec.factory = sweep::file_instance_source(args.file);
      }
      if (demand_swept) {
        spec.grid.add_linspace("demand", args.demand_lo, args.demand_hi,
                               args.demand_count);
      }
      if (alpha_swept) {
        spec.grid.add_linspace("alpha", args.alpha_lo, args.alpha_hi,
                               args.alpha_count);
      }
      if (!args.backend.empty()) {
        // Unknown names throw here and get the one usage footer below,
        // like unknown scenario or generator names.
        spec.backend = parse_equilibrium_backend(args.backend);
        // A backend run is about the equilibrium itself: report the Nash
        // cost (the column the FW-vs-bush comparisons use) instead of the
        // Stackelberg battery, whose β/C(S+T) solves bypass the backend.
        spec.metrics = {sweep::metric_nash_cost()};
      } else {
        spec.metrics = args.strategy.empty()
                           ? sweep::default_metrics()
                           : strategy_cli_metrics(args.strategy);
      }
      spec.warm_axis = alpha_swept ? "alpha" : "demand";
    } else {
      spec = sweep::make_scenario(args.scenario);
    }
  } catch (const std::exception& e) {
    std::cerr << "stackroute-sweep: " << e.what() << "\n";
    return usage(std::cerr, 1);
  }
  spec.base_seed = args.seed;

  try {
    set_max_threads(args.threads);
    sweep::SweepOptions sweep_opts;
    sweep_opts.warm_start = args.warm_start;
    sweep_opts.collect_counters = args.counters;
    sweep_opts.retry.max_retries = args.retries;
    sweep_opts.budget.deadline_ms = args.deadline_ms;
    if (faults.armed()) sweep_opts.faults = &faults;
    sweep::SweepTrace trace;
    const bool tracing = !args.trace.empty();
    const sweep::SweepResult result =
        sweep::SweepRunner(sweep_opts).run(spec, tracing ? &trace : nullptr);

    const Table table = args.timing ? result.timing_table() : result.table();
    std::string rendered;
    if (args.format == "csv") {
      rendered = table.to_csv();
    } else if (args.format == "json") {
      rendered = table.to_json();
    } else {
      rendered = "## " + spec.name + " — " + spec.description + "\n\n" +
                 table.to_markdown();
    }

    if (args.out.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(args.out);
      if (!out) {
        std::cerr << "cannot write " << args.out << "\n";
        return 1;
      }
      out << rendered;
    }
    if (tracing) {
      std::ofstream tf(args.trace);
      if (!tf) {
        std::cerr << "cannot write " << args.trace << "\n";
        return 1;
      }
      // A .jsonl target asks for the convergence samples; anything else
      // gets the chrome://tracing span document.
      if (args.trace.ends_with(".jsonl")) {
        trace.write_convergence_jsonl(tf);
      } else {
        trace.write_chrome_trace(tf);
      }
    }
    std::cerr << result.summary() << "\n";
    // One stderr line per failed task, truncated so a mass failure cannot
    // flood the terminal; the full text stays in the table/JSON exports.
    constexpr std::size_t kMaxErrorChars = 160;
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      const auto& rec = result.records[i];
      if (rec.ok) continue;
      std::string where;
      for (std::size_t k = 0;
           k < rec.point.size() && k < result.param_columns.size(); ++k) {
        if (!where.empty()) where += ", ";
        where += result.param_columns[k] + "=" +
                 format_double(rec.point.values()[k], result.digits);
      }
      std::string msg = rec.error;
      if (msg.size() > kMaxErrorChars) {
        msg.resize(kMaxErrorChars);
        msg += "...";
      }
      std::cerr << "task " << i;
      if (!where.empty()) std::cerr << " {" << where << "}";
      std::cerr << " failed";
      if (rec.retries > 0) {
        std::cerr << " (after " << rec.retries << " cold retr"
                  << (rec.retries == 1 ? "y" : "ies") << ")";
      }
      std::cerr << ": " << msg << "\n";
    }
    if (args.profile) std::cerr << result.profile() << "\n";
    return result.num_failed() + result.num_degraded() == 0 ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "stackroute-sweep: " << e.what() << "\n";
    return 1;
  }
}

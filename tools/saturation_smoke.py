#!/usr/bin/env python3
"""Saturation smoke for stackroute-serve's socket mode.

Drives the server at a configurable oversubscription factor (default 16x:
32 clients against 2 workers) with deliberately tiny admission queues and
checks the overload contract end to end:

  * no crash, no hang: the server answers every submitted line and shuts
    down cleanly on SIGINT (exit 2 — sheds are counted as errors);
  * no silent drops: every response is either ok or carries the typed
    "status":"overloaded" shed marker;
  * bounded degradation: some requests are still served (the shed rate is
    below 100%), and the accepted-request p99 latency stays bounded;
  * the stderr summary reports the admission and memory tallies.

Usage:
    saturation_smoke.py /path/to/stackroute-serve [--clients 32]
        [--requests 30] [--workers 2] [--p99-ms 10000]
"""
import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time


def start_server(binary, sock_path, workers):
    proc = subprocess.Popen(
        [
            binary,
            "--socket", sock_path,
            "--workers", str(workers),
            "--max-queue", str(2 * workers),
            "--max-client-queue", "2",
            "--table-budget-mb", "64",
            "--session-budget-mb", "64",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.time() + 10
    while time.time() < deadline:
        if os.path.exists(sock_path):
            try:
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                probe.connect(sock_path)
                probe.close()
                return proc
            except OSError:
                pass
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server socket never came up")


def client(sock_path, k, n, results):
    lines = "".join(
        json.dumps(
            {
                "id": k * 10000 + i,
                "op": "mop",
                "generate": "grid-bpr",
                "session": 1,
                "demand": 1.0 + 0.01 * i,
            }
        )
        + "\n"
        for i in range(n)
    )
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(sock_path)
    s.sendall(lines.encode())
    s.shutdown(socket.SHUT_WR)
    buf = b""
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        buf += chunk
    s.close()
    results[k] = [json.loads(ln) for ln in buf.decode().splitlines() if ln]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary")
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--requests", type=int, default=30)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--p99-ms", type=float, default=10000.0,
                        help="accepted-request p99 latency bound")
    args = parser.parse_args()

    sock_path = os.path.join(tempfile.mkdtemp(), "serve.sock")
    proc = start_server(args.binary, sock_path, args.workers)
    results = {}
    threads = [
        threading.Thread(target=client,
                         args=(sock_path, k, args.requests, results))
        for k in range(args.clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    proc.send_signal(signal.SIGINT)
    try:
        _, err = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        print("FAIL: server wedged on SIGINT")
        return 1

    failures = []
    responses = [r for v in results.values() for r in v]
    sent = args.clients * args.requests
    if len(responses) != sent:
        failures.append(f"answered {len(responses)}/{sent} lines")
    untyped = [
        r for r in responses
        if not r.get("ok") and r.get("status") != "overloaded"
    ]
    if untyped:
        failures.append(f"{len(untyped)} untyped failures: {untyped[:3]}")
    ok = [r for r in responses if r.get("ok")]
    shed = [r for r in responses if r.get("status") == "overloaded"]
    if not ok:
        failures.append("shed rate 100%: nothing was served")
    if not shed:
        failures.append("no sheds at all: the load was not a saturation")
    lat = sorted(r["millis"] for r in ok if "millis" in r)
    p99 = lat[max(0, int(len(lat) * 0.99) - 1)] if lat else float("inf")
    if p99 > args.p99_ms:
        failures.append(f"accepted-request p99 {p99:.1f} ms > bound "
                        f"{args.p99_ms} ms")
    if proc.returncode != 2:
        failures.append(f"exit {proc.returncode}, want 2 (sheds counted)")
    for needle in ("admission:", "memory:", "shed"):
        if needle not in err:
            failures.append(f"summary missing {needle!r}: {err[:300]}")

    rate = 100.0 * len(shed) / max(1, len(responses))
    print(f"saturation: {len(responses)} answered, {len(ok)} served, "
          f"{len(shed)} shed ({rate:.1f}%), accepted p99 {p99:.2f} ms")
    if failures:
        print("FAIL:\n" + "\n".join(failures))
        return 1
    print("ok: saturation contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Generate the synthetic Anaheim-class TNTP instance shipped in
examples/instances/ (Anaheim_net.tntp + Anaheim_trips.tntp).

This is NOT the real Anaheim network from the Transportation Networks
repository — it is a deterministic synthetic instance built to the same
scale (~416 nodes, ~914 directed links, 38 zones) so the assignment
benchmarks exercise a realistic road-network shape without vendoring
third-party data. Topology: a 14x27 grid of through nodes with
alternating one-way streets, two-way boundary arterials, and 38 zone
centroids attached by bidirectional connectors. Every parameter comes
from a fixed linear-congruential stream, so reruns reproduce the shipped
files byte for byte.

Usage: tools/make_synthetic_anaheim.py [outdir]   (default examples/instances)
"""
import os
import sys

COLS, ROWS = 14, 27          # 378 through nodes
ZONES = 38                   # nodes 1..38 are zone centroids
GRID_BASE = ZONES            # grid node ids start at ZONES + 1 (1-based)
NODES = ZONES + COLS * ROWS  # 416


class Lcg:
    """Deterministic parameter stream (MMIX constants)."""

    def __init__(self, seed=20060730):
        self.state = seed

    def next(self):
        self.state = (self.state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        return self.state >> 11

    def uniform(self, lo, hi):
        return lo + (hi - lo) * (self.next() / float(1 << 53))

    def randint(self, lo, hi):
        return lo + self.next() % (hi - lo + 1)


def grid_node(col, row):
    return GRID_BASE + row * COLS + col + 1  # 1-based


def build_links(rng):
    links = []  # (init, term, capacity, length, fft)

    def road(a, b, capacity_lo, capacity_hi):
        length = rng.uniform(0.3, 0.8)                 # miles
        speed = rng.uniform(25.0, 45.0)                # mph
        fft = 60.0 * length / speed                    # minutes
        links.append((a, b, rng.uniform(capacity_lo, capacity_hi), length, fft))

    # Alternating one-way rows (east on even rows) and columns (south on
    # even columns) — the Manhattan pattern.
    for row in range(ROWS):
        for col in range(COLS - 1):
            a, b = grid_node(col, row), grid_node(col + 1, row)
            road(*((a, b) if row % 2 == 0 else (b, a)), 1800.0, 3600.0)
    for col in range(COLS):
        for row in range(ROWS - 1):
            a, b = grid_node(col, row), grid_node(col, row + 1)
            road(*((a, b) if col % 2 == 0 else (b, a)), 1800.0, 3600.0)

    # Two-way boundary arterials: add the missing reverse direction along
    # the perimeter, which also guarantees strong connectivity.
    for col in range(COLS - 1):
        road(grid_node(col + 1, 0), grid_node(col, 0), 3600.0, 5400.0)
        a, b = grid_node(col, ROWS - 1), grid_node(col + 1, ROWS - 1)
        if (ROWS - 1) % 2 == 0:
            a, b = b, a
        road(a, b, 3600.0, 5400.0)
    for row in range(ROWS - 1):
        road(grid_node(0, row + 1), grid_node(0, row), 3600.0, 5400.0)
        a, b = grid_node(COLS - 1, row), grid_node(COLS - 1, row + 1)
        if (COLS - 1) % 2 == 0:
            a, b = b, a
        road(a, b, 3600.0, 5400.0)

    # Zone centroids: every zone gets one bidirectional connector to a
    # deterministic grid attach point; the first 22 zones get a second
    # (denser downtown zones), landing the link count in Anaheim's range.
    def connector(zone, col, row):
        g = grid_node(col, row)
        for a, b in ((zone, g), (g, zone)):
            links.append((a, b, rng.uniform(7000.0, 9000.0), 0.1,
                          rng.uniform(0.15, 0.35)))

    for zone in range(1, ZONES + 1):
        connector(zone, rng.randint(0, COLS - 1), rng.randint(0, ROWS - 1))
        if zone <= 22:
            connector(zone, rng.randint(0, COLS - 1), rng.randint(0, ROWS - 1))

    # One extra one-way downtown arterial to hit 914 links exactly.
    road(grid_node(3, 13), grid_node(10, 13), 3600.0, 5400.0)
    return links


def build_trips(rng):
    trips = {}  # origin -> [(dest, flow)]
    for origin in range(1, ZONES + 1):
        dests = []
        seen = {origin}
        while len(dests) < 10:
            d = rng.randint(1, ZONES)
            if d not in seen:
                seen.add(d)
                dests.append(d)
        trips[origin] = [(d, round(rng.uniform(40.0, 400.0), 1))
                         for d in sorted(dests)]
    return trips


def check_strongly_connected(links):
    fwd, rev = {}, {}
    for a, b, *_ in links:
        fwd.setdefault(a, []).append(b)
        rev.setdefault(b, []).append(a)

    def reach(adj):
        seen, stack = {1}, [1]
        while stack:
            for nxt in adj.get(stack.pop(), []):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    assert len(reach(fwd)) == NODES, "not strongly connected (forward)"
    assert len(reach(rev)) == NODES, "not strongly connected (reverse)"


def main():
    outdir = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "examples", "instances")
    rng = Lcg()
    links = build_links(rng)
    check_strongly_connected(links)
    trips = build_trips(rng)
    total = sum(f for row in trips.values() for _, f in row)

    net_path = os.path.join(outdir, "Anaheim_net.tntp")
    with open(net_path, "w") as f:
        f.write("~ Synthetic Anaheim-class instance generated by\n")
        f.write("~ tools/make_synthetic_anaheim.py -- NOT the real Anaheim\n")
        f.write("~ network; same scale, fabricated topology and parameters.\n")
        f.write("<NUMBER OF ZONES> %d\n" % ZONES)
        f.write("<NUMBER OF NODES> %d\n" % NODES)
        f.write("<FIRST THRU NODE> %d\n" % (ZONES + 1))
        f.write("<NUMBER OF LINKS> %d\n" % len(links))
        f.write("<END OF METADATA>\n\n")
        f.write("~ \tInit node \tTerm node \tCapacity \tLength \t"
                "Free Flow Time \tB\tPower\tSpeed limit \tToll \tLink Type\t;\n")
        for a, b, cap, length, fft in links:
            f.write("\t%d\t%d\t%.4f\t%.4f\t%.6f\t0.15\t4\t0\t0\t1\t;\n"
                    % (a, b, cap, length, fft))

    trips_path = os.path.join(outdir, "Anaheim_trips.tntp")
    with open(trips_path, "w") as f:
        f.write("~ Synthetic Anaheim-class OD matrix generated by\n")
        f.write("~ tools/make_synthetic_anaheim.py -- see Anaheim_net.tntp.\n")
        f.write("<NUMBER OF ZONES> %d\n" % ZONES)
        f.write("<TOTAL OD FLOW> %.1f\n" % total)
        f.write("<END OF METADATA>\n\n")
        for origin in range(1, ZONES + 1):
            f.write("Origin %d\n" % origin)
            row = trips[origin]
            for i in range(0, len(row), 5):
                f.write("    " + "".join("%d : %.1f;  " % e
                                         for e in row[i:i + 5]).rstrip() + "\n")

    print("wrote %s: %d nodes, %d links, %d zones" %
          (net_path, NODES, len(links), ZONES))
    print("wrote %s: %d OD pairs, total flow %.1f" %
          (trips_path, sum(len(v) for v in trips.values()), total))


if __name__ == "__main__":
    main()
